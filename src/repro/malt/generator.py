"""Synthetic MALT topology generation.

The generator builds a containment hierarchy (network -> datacenter -> pod ->
rack -> chassis -> packet switch -> port), a control plane (control points
``RK_CONTROLS`` packet switches) and a set of port-to-port
``RK_CONNECTED_TO`` links.  The default :func:`paper_scale_topology`
parameters land exactly on the paper's dataset size: 5,493 nodes and 6,424
directed edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph import PropertyGraph
from repro.malt.schema import EntityKind, RelationshipKind
from repro.utils.rng import DeterministicRng
from repro.utils.validation import require


@dataclass
class MaltTopologyConfig:
    """Parameters of the synthetic MALT topology.

    The defaults produce the paper-scale topology; tests use much smaller
    values (e.g. one datacenter with one pod).
    """

    datacenters: int = 2
    pods_per_datacenter: int = 4
    racks_per_pod: int = 8
    chassis_per_rack: int = 2
    switches_per_chassis: int = 4
    ports_per_switch: int = 9
    control_points: int = 170
    port_links: int = 590
    switch_capacities_gbps: tuple = (40, 100, 200, 400)
    vendors: tuple = ("vendor-a", "vendor-b", "vendor-c")
    port_speeds_gbps: tuple = (10, 25, 40, 100)
    seed: int = 11

    def validate(self) -> None:
        require(self.datacenters >= 1, "datacenters must be at least 1")
        require(self.pods_per_datacenter >= 1, "pods_per_datacenter must be at least 1")
        require(self.racks_per_pod >= 1, "racks_per_pod must be at least 1")
        require(self.chassis_per_rack >= 1, "chassis_per_rack must be at least 1")
        require(self.switches_per_chassis >= 1, "switches_per_chassis must be at least 1")
        require(self.ports_per_switch >= 1, "ports_per_switch must be at least 1")
        require(self.control_points >= 1, "control_points must be at least 1")
        require(self.port_links >= 0, "port_links must be non-negative")

    @property
    def expected_node_count(self) -> int:
        switches = (self.datacenters * self.pods_per_datacenter * self.racks_per_pod
                    * self.chassis_per_rack * self.switches_per_chassis)
        chassis = (self.datacenters * self.pods_per_datacenter * self.racks_per_pod
                   * self.chassis_per_rack)
        racks = self.datacenters * self.pods_per_datacenter * self.racks_per_pod
        pods = self.datacenters * self.pods_per_datacenter
        ports = switches * self.ports_per_switch
        return 1 + self.datacenters + pods + racks + chassis + switches + ports + self.control_points

    @property
    def expected_edge_count(self) -> int:
        switches = (self.datacenters * self.pods_per_datacenter * self.racks_per_pod
                    * self.chassis_per_rack * self.switches_per_chassis)
        containment = self.expected_node_count - 1 - self.control_points
        return containment + switches + self.port_links


def generate_malt_topology(config: Optional[MaltTopologyConfig] = None,
                           **overrides) -> PropertyGraph:
    """Generate a synthetic MALT topology as a directed property graph.

    Node attributes: ``type`` (entity kind), ``name``, plus kind-specific
    attributes (``capacity`` on chassis and packet switches, ``vendor`` on
    packet switches, ``speed_gbps``/``status`` on ports).  Edge attribute
    ``relationship`` holds the relationship kind.
    """
    if config is None:
        config = MaltTopologyConfig()
    if overrides:
        config = MaltTopologyConfig(**{**config.__dict__, **overrides})
    config.validate()

    rng = DeterministicRng(config.seed, "malt-topology")
    capacity_rng = rng.fork("capacity")
    vendor_rng = rng.fork("vendor")
    port_rng = rng.fork("ports")

    graph = PropertyGraph(name="malt-topology", directed=True)
    graph.graph_attributes["application"] = "malt"
    graph.graph_attributes["seed"] = config.seed

    def contains(parent: str, child: str) -> None:
        graph.add_edge(parent, child, relationship=RelationshipKind.CONTAINS.value)

    network_id = "wan"
    graph.add_node(network_id, type=EntityKind.NETWORK.value, name=network_id)

    all_switches: List[str] = []
    all_ports: List[str] = []

    for dc_index in range(1, config.datacenters + 1):
        dc_id = f"ju{dc_index}"
        graph.add_node(dc_id, type=EntityKind.DATACENTER.value, name=dc_id,
                       region=f"region-{(dc_index - 1) % 3 + 1}")
        contains(network_id, dc_id)
        for pod_index in range(1, config.pods_per_datacenter + 1):
            pod_id = f"{dc_id}.a{pod_index}"
            graph.add_node(pod_id, type=EntityKind.POD.value, name=pod_id)
            contains(dc_id, pod_id)
            for rack_index in range(1, config.racks_per_pod + 1):
                rack_id = f"{pod_id}.m{rack_index}"
                graph.add_node(rack_id, type=EntityKind.RACK.value, name=rack_id)
                contains(pod_id, rack_id)
                for chassis_index in range(1, config.chassis_per_rack + 1):
                    chassis_id = f"{rack_id}.c{chassis_index}"
                    chassis_capacity = 0
                    graph.add_node(chassis_id, type=EntityKind.CHASSIS.value,
                                   name=chassis_id, capacity=0)
                    contains(rack_id, chassis_id)
                    for switch_index in range(1, config.switches_per_chassis + 1):
                        switch_id = f"{rack_id}.s{switch_index}c{chassis_index}"
                        switch_capacity = capacity_rng.choice(
                            list(config.switch_capacities_gbps))
                        chassis_capacity += switch_capacity
                        graph.add_node(
                            switch_id,
                            type=EntityKind.PACKET_SWITCH.value,
                            name=switch_id,
                            capacity=switch_capacity,
                            vendor=vendor_rng.choice(list(config.vendors)),
                        )
                        contains(chassis_id, switch_id)
                        all_switches.append(switch_id)
                        for port_index in range(1, config.ports_per_switch + 1):
                            port_id = f"{switch_id}.p{port_index}"
                            graph.add_node(
                                port_id,
                                type=EntityKind.PORT.value,
                                name=port_id,
                                speed_gbps=port_rng.choice(list(config.port_speeds_gbps)),
                                status=port_rng.choice(["up", "up", "up", "down"]),
                            )
                            contains(switch_id, port_id)
                            all_ports.append(port_id)
                    graph.set_node_attribute(chassis_id, "capacity", chassis_capacity)

    # control plane: spread switches round-robin over the control points
    control_ids = []
    for cp_index in range(1, config.control_points + 1):
        cp_id = f"cp{cp_index}"
        graph.add_node(cp_id, type=EntityKind.CONTROL_POINT.value, name=cp_id,
                       software_version=f"v{1 + cp_index % 4}.{cp_index % 10}")
        control_ids.append(cp_id)
    for index, switch_id in enumerate(all_switches):
        cp_id = control_ids[index % len(control_ids)]
        graph.add_edge(cp_id, switch_id, relationship=RelationshipKind.CONTROLS.value)

    # data plane: deterministic pseudo-random port-to-port links
    link_rng = rng.fork("links")
    created = 0
    used_pairs = set()
    attempts = 0
    max_attempts = config.port_links * 50 + 100
    while created < config.port_links and attempts < max_attempts:
        attempts += 1
        source = link_rng.choice(all_ports)
        target = link_rng.choice(all_ports)
        if source == target or (source, target) in used_pairs:
            continue
        if source.rsplit(".", 1)[0] == target.rsplit(".", 1)[0]:
            continue  # never cable a switch to itself
        used_pairs.add((source, target))
        graph.add_edge(source, target, relationship=RelationshipKind.CONNECTED_TO.value)
        created += 1
    return graph


def paper_scale_topology(seed: int = 11) -> PropertyGraph:
    """The default topology matching the paper's dataset size.

    Returns a graph with exactly 5,493 nodes and 6,424 directed edges (the
    size the paper reports for the converted MALT example models).
    """
    return generate_malt_topology(MaltTopologyConfig(seed=seed))


def containment_children(graph: PropertyGraph, parent: str,
                         child_type: Optional[str] = None) -> List[str]:
    """Entities directly contained by *parent* (optionally filtered by type)."""
    children = []
    for child in graph.successors(parent):
        attrs = graph.edge_attributes(parent, child)
        if attrs.get("relationship") != RelationshipKind.CONTAINS.value:
            continue
        if child_type is not None and graph.node_attributes(child).get("type") != child_type:
            continue
        children.append(child)
    return children


def containment_parent(graph: PropertyGraph, child: str) -> Optional[str]:
    """The entity that contains *child*, if any."""
    for parent in graph.predecessors(child):
        attrs = graph.edge_attributes(parent, child)
        if attrs.get("relationship") == RelationshipKind.CONTAINS.value:
            return parent
    return None


def entities_of_type(graph: PropertyGraph, entity_type: str) -> List[str]:
    """All node ids with the given entity ``type`` attribute."""
    return [node_id for node_id, attrs in graph.nodes(data=True)
            if attrs.get("type") == entity_type]


def type_counts(graph: PropertyGraph) -> Dict[str, int]:
    """Number of entities per entity kind."""
    counts: Dict[str, int] = {}
    for _, attrs in graph.nodes(data=True):
        kind = attrs.get("type", "unknown")
        counts[kind] = counts.get(kind, 0) + 1
    return counts
