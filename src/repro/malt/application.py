"""Application wrapper for the MALT network-lifecycle-management workload."""

from __future__ import annotations

from typing import Optional

from repro.core.application import ApplicationContext, NetworkApplication
from repro.graph import PropertyGraph
from repro.malt.generator import MaltTopologyConfig, generate_malt_topology
from repro.malt.schema import describe_schema


class MaltApplication(NetworkApplication):
    """Network lifecycle management over a MALT topology graph.

    The wrapper exposes the MALT entity/relationship graph in every backend
    representation and provides the schema description (entity kinds,
    relationship kinds, their attributes) for the prompt generator — this is
    the "MALT wrapper" the paper describes as extracting entities and
    relationships and describing them in natural language.
    """

    name = "malt"

    def __init__(self, graph: Optional[PropertyGraph] = None,
                 config: Optional[MaltTopologyConfig] = None) -> None:
        if graph is None:
            graph = generate_malt_topology(config)
        super().__init__(graph)

    @classmethod
    def small(cls, seed: int = 11) -> "MaltApplication":
        """A small topology for tests and examples (hundreds of nodes)."""
        config = MaltTopologyConfig(
            datacenters=1, pods_per_datacenter=2, racks_per_pod=2,
            chassis_per_rack=2, switches_per_chassis=2, ports_per_switch=3,
            control_points=4, port_links=6, seed=seed)
        return cls(config=config)

    @classmethod
    def from_scenario(cls, spec_or_name, at_time: Optional[float] = None) -> "MaltApplication":
        """Build the application from a MALT-family scenario spec or name.

        The scenario is replayed through the event engine; the application
        wraps the final state (or the state at *at_time*).
        """
        from repro.scenarios.overlay import malt_application_from_scenario

        return malt_application_from_scenario(spec_or_name, at_time=at_time,
                                              application_cls=cls)

    def context(self) -> ApplicationContext:
        return ApplicationContext(
            application_name="Network lifecycle management (MALT)",
            application_description=(
                "The network state is a Multi-Abstraction-Layer Topology (MALT): "
                "a directed graph of typed entities (datacenters, pods, racks, "
                "chassis, packet switches, ports, control points) connected by "
                "typed relationships.  Containment edges point from the container "
                "to the contained entity; control edges point from a control point "
                "to the packet switch it manages."),
            graph_description="\n".join([self.graph_summary(), describe_schema()]),
            node_schema={
                "type": "entity kind, one of the EK_* names",
                "name": "hierarchical entity name, e.g. 'ju1.a1.m1.s2c1'",
                "capacity": "capacity in Gbps (chassis and packet switches)",
                "vendor": "hardware vendor (packet switches)",
                "speed_gbps": "port speed in Gbps (ports)",
                "status": "port status, 'up' or 'down' (ports)",
            },
            edge_schema={
                "relationship": "relationship kind: RK_CONTAINS, RK_CONTROLS, or RK_CONNECTED_TO",
            },
            terminology={
                "contained by": "X is contained by Y when there is an RK_CONTAINS edge from Y to X",
                "controls": "a control point controls a packet switch via an RK_CONTROLS edge",
                "capacity balancing": "after removing a switch, redistribute its capacity equally "
                                       "over the remaining switches in the same chassis",
            },
            example_queries=[
                "List all ports that are contained by packet switch ju1.a1.m1.s2c1.",
                "Find the first and the second largest chassis by capacity.",
                "Remove packet switch ju1.a1.m1.s1c1 from its chassis and rebalance the capacity.",
            ],
        )
