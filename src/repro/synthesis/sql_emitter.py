"""Code emitter for the SQL backend.

Each template renders one or more SQL statements (separated by semicolons)
against the ``nodes``/``edges`` tables produced by
:func:`repro.graph.convert.to_sql_database`.  The result of the final
``SELECT`` is the answer; manipulation intents issue ``UPDATE``/``DELETE``
statements and the evaluator reconstructs the graph from the database.

Coverage is the narrowest of the three backends: prefix arithmetic, graph
traversal, and multi-level containment walks do not fit the supported SQL
subset, mirroring the paper's finding that the SQL representation performs
worst on graph-manipulation tasks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.synthesis.intents import Intent


def _emit_count_nodes(intent: Intent) -> str:
    return "SELECT COUNT(*) AS node_count FROM nodes"


def _emit_count_edges(intent: Intent) -> str:
    return "SELECT COUNT(*) AS edge_count FROM edges"


def _emit_total_bytes(intent: Intent) -> str:
    return "SELECT SUM(bytes) AS total_bytes FROM edges"


def _emit_list_nodes_by_prefix(intent: Intent) -> str:
    prefix = intent.param("prefix")
    return (f"SELECT address FROM nodes WHERE address LIKE '{prefix}.%' "
            f"ORDER BY address")


def _emit_max_bytes_edge(intent: Intent) -> str:
    return (
        "SELECT n1.address AS source_address, n2.address AS target_address "
        "FROM edges "
        "JOIN nodes n1 ON source = n1.id "
        "JOIN nodes n2 ON target = n2.id "
        "ORDER BY bytes DESC, n1.address ASC, n2.address ASC "
        "LIMIT 1"
    )


def _emit_count_nodes_of_type(intent: Intent) -> str:
    type_name = intent.param("type_name")
    return f"SELECT COUNT(*) AS type_count FROM nodes WHERE type = '{type_name}'"


def _emit_top_k_talkers(intent: Intent) -> str:
    k = intent.param("k", 3)
    return (
        "SELECT n.address AS address, SUM(bytes) AS total_bytes "
        "FROM edges "
        "JOIN nodes n ON source = n.id "
        "GROUP BY n.address "
        "ORDER BY total_bytes DESC, address ASC "
        f"LIMIT {k}"
    )


def _emit_heavy_edges_above(intent: Intent) -> str:
    threshold = intent.param("threshold", 500_000)
    return (
        "SELECT n1.address AS source_address, n2.address AS target_address "
        "FROM edges "
        "JOIN nodes n1 ON source = n1.id "
        "JOIN nodes n2 ON target = n2.id "
        f"WHERE bytes > {threshold} "
        "ORDER BY source_address ASC, target_address ASC"
    )


def _emit_remove_light_edges(intent: Intent) -> str:
    threshold = intent.param("threshold", 1000)
    return f"DELETE FROM edges WHERE bytes < {threshold}"


def _emit_avg_bytes_by_source_type(intent: Intent) -> str:
    return (
        "SELECT n.type AS source_type, AVG(bytes) AS avg_bytes "
        "FROM edges "
        "JOIN nodes n ON source = n.id "
        "GROUP BY n.type"
    )


def _emit_reciprocal_pair_count(intent: Intent) -> str:
    return (
        "SELECT COUNT(*) / 2 AS reciprocal_pairs "
        "FROM edges e1 "
        "JOIN edges e2 ON e1.source = e2.target AND e1.target = e2.source "
        "WHERE e1.source <> e1.target"
    )


# ---------------------------------------------------------------------------
# MALT intents
# ---------------------------------------------------------------------------
def _emit_list_ports_of_switch(intent: Intent) -> str:
    switch = intent.param("switch")
    return (
        "SELECT target FROM edges "
        f"WHERE source = '{switch}' AND relationship = 'RK_CONTAINS' "
        "ORDER BY target"
    )


def _emit_count_entities_of_type(intent: Intent) -> str:
    entity_type = intent.param("entity_type")
    return f"SELECT COUNT(*) AS entity_count FROM nodes WHERE type = '{entity_type}'"


def _emit_switches_controlled_by(intent: Intent) -> str:
    control_point = intent.param("control_point")
    return (
        "SELECT target FROM edges "
        f"WHERE source = '{control_point}' AND relationship = 'RK_CONTROLS' "
        "ORDER BY target"
    )


def _emit_top2_chassis_by_capacity(intent: Intent) -> str:
    return (
        "SELECT id FROM nodes WHERE type = 'EK_CHASSIS' "
        "ORDER BY capacity DESC, id ASC LIMIT 2"
    )


#: intent name -> template
TEMPLATES: Dict[str, Callable[[Intent], str]] = {
    "count_nodes": _emit_count_nodes,
    "count_edges": _emit_count_edges,
    "total_bytes": _emit_total_bytes,
    "list_nodes_by_prefix": _emit_list_nodes_by_prefix,
    "max_bytes_edge": _emit_max_bytes_edge,
    "count_nodes_of_type": _emit_count_nodes_of_type,
    "top_k_talkers": _emit_top_k_talkers,
    "heavy_edges_above": _emit_heavy_edges_above,
    "remove_light_edges": _emit_remove_light_edges,
    "avg_bytes_by_source_type": _emit_avg_bytes_by_source_type,
    "reciprocal_pair_count": _emit_reciprocal_pair_count,
    "list_ports_of_switch": _emit_list_ports_of_switch,
    "count_entities_of_type": _emit_count_entities_of_type,
    "switches_controlled_by": _emit_switches_controlled_by,
    "top2_chassis_by_capacity": _emit_top2_chassis_by_capacity,
}


def supported_intents() -> List[str]:
    """Intent names this emitter can generate SQL for."""
    return sorted(TEMPLATES)


def emit(intent: Intent) -> str:
    """Render SQL for *intent*."""
    if intent.name not in TEMPLATES:
        raise KeyError(f"sql emitter does not support intent {intent.name!r}")
    return TEMPLATES[intent.name](intent)
