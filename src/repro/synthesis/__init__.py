"""Rule-based program synthesis for network-management queries.

This package is the code-producing half of the simulated LLMs: it maps a
natural-language query (or a parsed :class:`~repro.synthesis.intents.Intent`)
to executable code for each backend the paper evaluates:

* :mod:`repro.synthesis.networkx_emitter` — Python against a ``networkx``
  graph ``G``;
* :mod:`repro.synthesis.frames_emitter` — Python against ``nodes_df`` /
  ``edges_df`` dataframes (the pandas-style backend);
* :mod:`repro.synthesis.sql_emitter` — SQL against the ``nodes``/``edges``
  tables.

:mod:`repro.synthesis.reference` holds the backend-independent semantics of
every supported intent (what the correct answer *is*), which the benchmark
uses as golden answers and the strawman path uses to answer directly from
data.
"""

from repro.synthesis.intents import (
    Intent,
    IntentParseError,
    parse_query,
    KNOWN_INTENTS,
    TEMPORAL_INTENT_SIGNATURES,
    temporal_intent_names,
)
from repro.synthesis.engine import (
    CodeSynthesisEngine,
    UnsupportedQueryError,
    GeneratedProgram,
    TEMPORAL_CODE_BACKENDS,
)
from repro.synthesis.reference import ReferenceOutcome, evaluate_reference
from repro.synthesis.temporal import run_temporal_program, timeline_namespace

__all__ = [
    "Intent",
    "IntentParseError",
    "parse_query",
    "KNOWN_INTENTS",
    "TEMPORAL_INTENT_SIGNATURES",
    "temporal_intent_names",
    "CodeSynthesisEngine",
    "UnsupportedQueryError",
    "GeneratedProgram",
    "TEMPORAL_CODE_BACKENDS",
    "ReferenceOutcome",
    "evaluate_reference",
    "run_temporal_program",
    "timeline_namespace",
]
