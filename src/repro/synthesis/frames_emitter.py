"""Code emitter for the dataframe (pandas-style) backend.

Each template renders Python that operates on ``nodes_df`` and ``edges_df``
(see :mod:`repro.frames`), reassigns those variables for manipulation
intents, and leaves analysis answers in ``result``.

The coverage is intentionally narrower than the NetworkX emitter: graph
traversal tasks (paths, components, multi-level containment walks) are
awkward to express over flat node/edge tables, which is precisely why the
paper measures lower accuracy for the pandas backend.  Unsupported intents
raise ``KeyError`` and the simulated LLM falls back to faulty code.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.synthesis.intents import Intent


def _emit_count_nodes(intent: Intent) -> str:
    return "result = len(nodes_df)\n"


def _emit_count_edges(intent: Intent) -> str:
    return "result = len(edges_df)\n"


def _emit_total_bytes(intent: Intent) -> str:
    return "result = edges_df['bytes'].sum()\n"


def _emit_label_nodes_by_prefix(intent: Intent) -> str:
    prefix = intent.param("prefix")
    key = intent.param("key", "app")
    value = intent.param("value", "production")
    return (
        f"mask = nodes_df['address'].str.startswith({prefix + '.'!r})\n"
        f"labels = [{value!r} if flag else None for flag in mask.tolist()]\n"
        f"nodes_df = nodes_df.assign(**{{{key!r}: labels}})\n"
    )


def _emit_list_nodes_by_prefix(intent: Intent) -> str:
    prefix = intent.param("prefix")
    return (
        f"matching = nodes_df[nodes_df['address'].str.startswith({prefix + '.'!r})]\n"
        "result = sorted(matching['address'].tolist())\n"
    )


def _emit_max_bytes_edge(intent: Intent) -> str:
    return (
        "top = edges_df.sort_values('bytes', ascending=False).head(1)\n"
        "result = []\n"
        "if len(top):\n"
        "    row = top.row(0)\n"
        "    address_of = dict(zip(nodes_df['id'].tolist(), nodes_df['address'].tolist()))\n"
        "    result = [address_of[row['source']], address_of[row['target']]]\n"
    )


def _emit_count_nodes_of_type(intent: Intent) -> str:
    type_name = intent.param("type_name")
    return f"result = len(nodes_df[nodes_df['type'] == {type_name!r}])\n"


def _emit_list_isolated_nodes(intent: Intent) -> str:
    return (
        "active = set(edges_df['source'].tolist()) | set(edges_df['target'].tolist())\n"
        "isolated = nodes_df[nodes_df['id'].isin(active) == False]\n"
        "result = sorted(isolated['address'].tolist())\n"
    )


def _emit_color_by_prefix16(intent: Intent) -> str:
    return (
        "prefixes = sorted({'.'.join(address.split('.')[:2])\n"
        "                   for address in nodes_df['address'].tolist()})\n"
        "color_of = {prefix: 'color-' + str(index) for index, prefix in enumerate(prefixes)}\n"
        "colors = ['color-0' if address is None else color_of['.'.join(address.split('.')[:2])]\n"
        "          for address in nodes_df['address'].tolist()]\n"
        "nodes_df = nodes_df.assign(color=colors)\n"
    )


def _emit_top_k_talkers(intent: Intent) -> str:
    k = intent.param("k", 3)
    return (
        "per_source = edges_df.groupby('source')['bytes'].sum()\n"
        "totals = dict(zip(per_source['source'].tolist(), per_source['bytes'].tolist()))\n"
        "address_of = dict(zip(nodes_df['id'].tolist(), nodes_df['address'].tolist()))\n"
        "ranked = sorted(nodes_df['id'].tolist(),\n"
        "                key=lambda n: (-totals.get(n, 0), address_of[n]))\n"
        f"result = [address_of[n] for n in ranked[:{k}]]\n"
    )


def _emit_peer_count_per_node(intent: Intent) -> str:
    return (
        "peers = {}\n"
        "for _, row in edges_df.iterrows():\n"
        "    peers.setdefault(row['source'], set()).add(row['target'])\n"
        "    peers.setdefault(row['target'], set()).add(row['source'])\n"
        "address_of = dict(zip(nodes_df['id'].tolist(), nodes_df['address'].tolist()))\n"
        "result = {address_of[n]: len(peers.get(n, set())) for n in nodes_df['id'].tolist()}\n"
    )


def _emit_bytes_per_prefix16(intent: Intent) -> str:
    return (
        "address_of = dict(zip(nodes_df['id'].tolist(), nodes_df['address'].tolist()))\n"
        "enriched = edges_df.assign(\n"
        "    prefix=['.'.join(address_of[s].split('.')[:2]) for s in edges_df['source'].tolist()])\n"
        "per_prefix = enriched.groupby('prefix')['bytes'].sum()\n"
        "result = dict(zip(per_prefix['prefix'].tolist(), per_prefix['bytes'].tolist()))\n"
    )


def _emit_heavy_edges_above(intent: Intent) -> str:
    threshold = intent.param("threshold", 500_000)
    return (
        f"heavy = edges_df[edges_df['bytes'] > {threshold}]\n"
        "address_of = dict(zip(nodes_df['id'].tolist(), nodes_df['address'].tolist()))\n"
        "result = sorted([address_of[row['source']], address_of[row['target']]]\n"
        "                for _, row in heavy.iterrows())\n"
    )


def _emit_remove_light_edges(intent: Intent) -> str:
    threshold = intent.param("threshold", 1000)
    return f"edges_df = edges_df[edges_df['bytes'] >= {threshold}]\n"


def _emit_avg_bytes_by_source_type(intent: Intent) -> str:
    return (
        "type_of = dict(zip(nodes_df['id'].tolist(), nodes_df['type'].tolist()))\n"
        "enriched = edges_df.assign(source_type=[type_of[s] for s in edges_df['source'].tolist()])\n"
        "per_type = enriched.groupby('source_type')['bytes'].mean()\n"
        "result = dict(zip(per_type['source_type'].tolist(), per_type['bytes'].tolist()))\n"
    )


def _emit_reciprocal_pair_count(intent: Intent) -> str:
    return (
        "forward = set()\n"
        "for _, row in edges_df.iterrows():\n"
        "    forward.add((row['source'], row['target']))\n"
        "pairs = set()\n"
        "for source, target in forward:\n"
        "    if source != target and (target, source) in forward:\n"
        "        pairs.add(frozenset((source, target)))\n"
        "result = len(pairs)\n"
    )


def _emit_cluster_nodes_by_total_bytes(intent: Intent) -> str:
    clusters = intent.param("clusters", 5)
    return (
        "totals = {node: 0 for node in nodes_df['id'].tolist()}\n"
        "for _, row in edges_df.iterrows():\n"
        "    totals[row['source']] = totals.get(row['source'], 0) + row['bytes']\n"
        "    totals[row['target']] = totals.get(row['target'], 0) + row['bytes']\n"
        "address_of = dict(zip(nodes_df['id'].tolist(), nodes_df['address'].tolist()))\n"
        "result = {}\n"
        "if totals:\n"
        "    low = min(totals.values())\n"
        "    high = max(totals.values())\n"
        "    span = (high - low) or 1.0\n"
        "    for node, total in totals.items():\n"
        f"        index = int((total - low) / span * {clusters})\n"
        f"        result[address_of[node]] = min({clusters} - 1, index)\n"
    )


def _emit_remove_highest_degree_node(intent: Intent) -> str:
    return (
        "degree = {node: 0 for node in nodes_df['id'].tolist()}\n"
        "for _, row in edges_df.iterrows():\n"
        "    degree[row['source']] = degree.get(row['source'], 0) + 1\n"
        "    degree[row['target']] = degree.get(row['target'], 0) + 1\n"
        "ranked = sorted(nodes_df['id'].tolist(), key=lambda n: (-degree.get(n, 0), str(n)))\n"
        "if ranked:\n"
        "    victim = ranked[0]\n"
        "    nodes_df = nodes_df[nodes_df['id'] != victim]\n"
        "    edges_df = edges_df[(edges_df['source'] != victim) & (edges_df['target'] != victim)]\n"
        "result = len(edges_df)\n"
    )


# ---------------------------------------------------------------------------
# MALT intents
# ---------------------------------------------------------------------------
def _emit_list_ports_of_switch(intent: Intent) -> str:
    switch = intent.param("switch")
    return (
        f"children = edges_df[(edges_df['source'] == {switch!r}) &\n"
        "                     (edges_df['relationship'] == 'RK_CONTAINS')]\n"
        "port_ids = set(nodes_df[nodes_df['type'] == 'EK_PORT']['id'].tolist())\n"
        "result = sorted(target for target in children['target'].tolist() if target in port_ids)\n"
    )


def _emit_count_entities_of_type(intent: Intent) -> str:
    entity_type = intent.param("entity_type")
    return f"result = len(nodes_df[nodes_df['type'] == {entity_type!r}])\n"


def _emit_switches_controlled_by(intent: Intent) -> str:
    control_point = intent.param("control_point")
    return (
        f"controlled = edges_df[(edges_df['source'] == {control_point!r}) &\n"
        "                       (edges_df['relationship'] == 'RK_CONTROLS')]\n"
        "result = sorted(controlled['target'].tolist())\n"
    )


def _emit_top2_chassis_by_capacity(intent: Intent) -> str:
    return (
        "chassis = nodes_df[nodes_df['type'] == 'EK_CHASSIS']\n"
        "ranked = sorted(chassis.to_records(), key=lambda row: (-row['capacity'], row['id']))\n"
        "result = [row['id'] for row in ranked[:2]]\n"
    )


def _emit_port_count_per_chassis_in_rack(intent: Intent) -> str:
    rack = intent.param("rack")
    return (
        "contains = edges_df[edges_df['relationship'] == 'RK_CONTAINS']\n"
        "children_of = {}\n"
        "for _, row in contains.iterrows():\n"
        "    children_of.setdefault(row['source'], []).append(row['target'])\n"
        "type_of = dict(zip(nodes_df['id'].tolist(), nodes_df['type'].tolist()))\n"
        "result = {}\n"
        f"for chassis in children_of.get({rack!r}, []):\n"
        "    if type_of.get(chassis) != 'EK_CHASSIS':\n"
        "        continue\n"
        "    count = 0\n"
        "    stack = list(children_of.get(chassis, []))\n"
        "    while stack:\n"
        "        current = stack.pop()\n"
        "        if type_of.get(current) == 'EK_PORT':\n"
        "            count += 1\n"
        "        stack.extend(children_of.get(current, []))\n"
        "    result[chassis] = count\n"
    )


def _emit_remove_switch_and_rebalance(intent: Intent) -> str:
    switch = intent.param("switch")
    return (
        f"switch = {switch!r}\n"
        "switch_rows = nodes_df[nodes_df['id'] == switch]\n"
        "if len(switch_rows):\n"
        "    capacity = switch_rows.row(0)['capacity']\n"
        "    parents = edges_df[(edges_df['target'] == switch) &\n"
        "                        (edges_df['relationship'] == 'RK_CONTAINS')]\n"
        "    chassis = parents.row(0)['source'] if len(parents) else None\n"
        "    nodes_df = nodes_df[nodes_df['id'] != switch]\n"
        "    edges_df = edges_df[(edges_df['source'] != switch) & (edges_df['target'] != switch)]\n"
        "    if chassis is not None:\n"
        "        siblings_edges = edges_df[(edges_df['source'] == chassis) &\n"
        "                                   (edges_df['relationship'] == 'RK_CONTAINS')]\n"
        "        switch_ids = set(nodes_df[nodes_df['type'] == 'EK_PACKET_SWITCH']['id'].tolist())\n"
        "        siblings = [t for t in siblings_edges['target'].tolist() if t in switch_ids]\n"
        "        if siblings:\n"
        "            share = capacity / len(siblings)\n"
        "            updated = [value + share if node in siblings else value\n"
        "                       for node, value in zip(nodes_df['id'].tolist(),\n"
        "                                              nodes_df['capacity'].tolist())]\n"
        "            nodes_df = nodes_df.assign(capacity=updated)\n"
    )


#: intent name -> template
TEMPLATES: Dict[str, Callable[[Intent], str]] = {
    "count_nodes": _emit_count_nodes,
    "count_edges": _emit_count_edges,
    "total_bytes": _emit_total_bytes,
    "label_nodes_by_prefix": _emit_label_nodes_by_prefix,
    "list_nodes_by_prefix": _emit_list_nodes_by_prefix,
    "max_bytes_edge": _emit_max_bytes_edge,
    "count_nodes_of_type": _emit_count_nodes_of_type,
    "list_isolated_nodes": _emit_list_isolated_nodes,
    "color_by_prefix16": _emit_color_by_prefix16,
    "top_k_talkers": _emit_top_k_talkers,
    "peer_count_per_node": _emit_peer_count_per_node,
    "bytes_per_prefix16": _emit_bytes_per_prefix16,
    "heavy_edges_above": _emit_heavy_edges_above,
    "remove_light_edges": _emit_remove_light_edges,
    "avg_bytes_by_source_type": _emit_avg_bytes_by_source_type,
    "reciprocal_pair_count": _emit_reciprocal_pair_count,
    "cluster_nodes_by_total_bytes": _emit_cluster_nodes_by_total_bytes,
    "remove_highest_degree_node": _emit_remove_highest_degree_node,
    "list_ports_of_switch": _emit_list_ports_of_switch,
    "count_entities_of_type": _emit_count_entities_of_type,
    "switches_controlled_by": _emit_switches_controlled_by,
    "top2_chassis_by_capacity": _emit_top2_chassis_by_capacity,
    "port_count_per_chassis_in_rack": _emit_port_count_per_chassis_in_rack,
    "remove_switch_and_rebalance": _emit_remove_switch_and_rebalance,
}


def supported_intents() -> List[str]:
    """Intent names this emitter can generate code for."""
    return sorted(TEMPLATES)


def emit(intent: Intent) -> str:
    """Render dataframe-backend Python code for *intent*."""
    if intent.name not in TEMPLATES:
        raise KeyError(f"frames emitter does not support intent {intent.name!r}")
    return TEMPLATES[intent.name](intent)


# ---------------------------------------------------------------------------
# temporal intents — programs over a serialized ScenarioTimeline
# ---------------------------------------------------------------------------
# Temporal programs run against ``snapshots`` (a list of dicts with ``time``,
# ``digest``, ``attributes`` and per-snapshot ``nodes_df``/``edges_df``
# frames) and ``deltas`` (aligned structural diffs) — see DESIGN.md
# "Timeline-aware synthesis" for the contract.  Missing edge attributes
# surface as ``None`` cells, so the aggregating templates skip them, which
# matches the reference semantics' ``attrs.get(key, 0)``.

#: snapshot-anchoring helper shared by every timestamped temporal template
_FRAMES_AT = (
    "def frames_at(t):\n"
    "    chosen = snapshots[0]\n"
    "    for snap in snapshots:\n"
    "        if snap['time'] <= t:\n"
    "            chosen = snap\n"
    "    return chosen\n"
)

#: edge-presence helper: the set of (source, target) pairs of one edge frame
_EDGE_PAIRS = (
    "def edge_pairs(edges_df):\n"
    "    return set(zip(edges_df['source'].tolist(), edges_df['target'].tolist()))\n"
)

#: link-presence helper over a pair set: symmetric on undirected networks
_HAS_PAIR = (
    "def has_pair(pairs, u, v):\n"
    "    if (u, v) in pairs:\n"
    "        return True\n"
    "    return (not snapshots[0]['directed']) and (v, u) in pairs\n"
)

#: total of one (possibly absent) numeric edge column, Nones skipped
_EDGE_TOTAL = (
    "def edge_total(edges_df, key):\n"
    "    if key not in edges_df:\n"
    "        return 0\n"
    "    return sum(value for value in edges_df[key].tolist() if value is not None)\n"
)


def _frames_window_exprs(intent: Intent) -> tuple:
    """Window expressions via the shared :func:`repro.synthesis.intents.
    temporal_window` precedence (see the networkx emitter's counterpart)."""
    from repro.synthesis.intents import temporal_window

    start, end = temporal_window(intent)
    return (repr(float(start)) if start is not None else "snapshots[0]['time']",
            repr(float(end)) if end is not None else "snapshots[-1]['time']")


def _frames_at_expr(intent: Intent) -> str:
    return repr(float(intent.param("at", 0.0)))


def _emit_tf_node_count_at(intent: Intent) -> str:
    return _FRAMES_AT + f"result = len(frames_at({_frames_at_expr(intent)})['nodes_df'])\n"


def _emit_tf_edge_count_at(intent: Intent) -> str:
    return _FRAMES_AT + f"result = len(frames_at({_frames_at_expr(intent)})['edges_df'])\n"


def _emit_tf_snapshot_count(intent: Intent) -> str:
    return "result = len(snapshots)\n"


def _emit_tf_isolated_nodes_at(intent: Intent) -> str:
    return _FRAMES_AT + (
        f"snap = frames_at({_frames_at_expr(intent)})\n"
        "edges_df = snap['edges_df']\n"
        "active = set(edges_df['source'].tolist()) | set(edges_df['target'].tolist())\n"
        "result = sorted(str(node) for node in snap['nodes_df']['id'].tolist()\n"
        "                if node not in active)\n"
    )


def _emit_tf_peak_traffic_time(intent: Intent) -> str:
    key = intent.param("key", "bytes")
    return _EDGE_TOTAL + (
        "best_time = None\n"
        "best_total = None\n"
        "for snap in snapshots:\n"
        f"    total = edge_total(snap['edges_df'], {key!r})\n"
        "    if best_total is None or total > best_total:\n"
        "        best_time = snap['time']\n"
        "        best_total = total\n"
        "result = best_time\n"
    )


def _emit_tf_failed_links_since(intent: Intent) -> str:
    start, end = _frames_window_exprs(intent)
    return _FRAMES_AT + _EDGE_PAIRS + (
        f"earlier = edge_pairs(frames_at({start})['edges_df'])\n"
        f"later = edge_pairs(frames_at({end})['edges_df'])\n"
        "result = sorted([str(u), str(v)] for u, v in earlier if (u, v) not in later)\n"
    )


def _emit_tf_restored_links_since(intent: Intent) -> str:
    start, end = _frames_window_exprs(intent)
    return _FRAMES_AT + _EDGE_PAIRS + (
        f"earlier = edge_pairs(frames_at({start})['edges_df'])\n"
        f"later = edge_pairs(frames_at({end})['edges_df'])\n"
        "result = sorted([str(u), str(v)] for u, v in later if (u, v) not in earlier)\n"
    )


def _emit_tf_churned_nodes_between(intent: Intent) -> str:
    start, end = _frames_window_exprs(intent)
    return _FRAMES_AT + (
        f"earlier = set(frames_at({start})['nodes_df']['id'].tolist())\n"
        f"later = set(frames_at({end})['nodes_df']['id'].tolist())\n"
        "result = {\n"
        "    'departed': sorted(str(n) for n in earlier - later),\n"
        "    'joined': sorted(str(n) for n in later - earlier),\n"
        "}\n"
    )


def _emit_tf_capacity_drop_at(intent: Intent) -> str:
    attribute = intent.param("attribute", "capacity_gbps")
    return _FRAMES_AT + _EDGE_TOTAL + (
        f"baseline = edge_total(snapshots[0]['edges_df'], {attribute!r})\n"
        f"current = edge_total(frames_at({_frames_at_expr(intent)})['edges_df'], {attribute!r})\n"
        "result = round(baseline - current, 6)\n"
    )


def _emit_tf_degraded_links_at(intent: Intent) -> str:
    attribute = intent.param("attribute", "capacity_gbps")
    return _FRAMES_AT + (
        "initial = snapshots[0]['edges_df']\n"
        f"current = frames_at({_frames_at_expr(intent)})['edges_df']\n"
        "initial_value = {}\n"
        f"if {attribute!r} in initial:\n"
        "    for u, v, value in zip(initial['source'].tolist(), initial['target'].tolist(),\n"
        f"                           initial[{attribute!r}].tolist()):\n"
        "        initial_value[(u, v)] = value\n"
        "        if not snapshots[0]['directed']:\n"
        "            initial_value[(v, u)] = value\n"
        "degraded = []\n"
        f"if {attribute!r} in current:\n"
        "    for u, v, now in zip(current['source'].tolist(), current['target'].tolist(),\n"
        f"                         current[{attribute!r}].tolist()):\n"
        "        before = initial_value.get((u, v))\n"
        "        if before is not None and now is not None and now < before:\n"
        "            degraded.append([str(u), str(v)])\n"
        "result = sorted(degraded)\n"
    )


def _emit_tf_traffic_change_between(intent: Intent) -> str:
    key = intent.param("key", "bytes")
    start, end = _frames_window_exprs(intent)
    return _FRAMES_AT + _EDGE_TOTAL + (
        f"before = edge_total(frames_at({start})['edges_df'], {key!r})\n"
        f"after = edge_total(frames_at({end})['edges_df'], {key!r})\n"
        "result = round(after - before, 6)\n"
    )


def _emit_tf_failed_srlgs_at(intent: Intent) -> str:
    return _FRAMES_AT + _EDGE_PAIRS + _HAS_PAIR + (
        "srlgs = snapshots[0]['attributes'].get('srlgs', {})\n"
        f"present = edge_pairs(frames_at({_frames_at_expr(intent)})['edges_df'])\n"
        "result = sorted(\n"
        "    name for name, members in srlgs.items()\n"
        "    if members and all(not has_pair(present, source, target)\n"
        "                       for source, target in members))\n"
    )


def _emit_tf_srlg_links_down_at(intent: Intent) -> str:
    group = intent.param("group")
    return _FRAMES_AT + _EDGE_PAIRS + _HAS_PAIR + (
        f"members = snapshots[0]['attributes'].get('srlgs', {{}}).get({group!r}, [])\n"
        f"present = edge_pairs(frames_at({_frames_at_expr(intent)})['edges_df'])\n"
        "result = sorted([str(source), str(target)] for source, target in members\n"
        "                if not has_pair(present, source, target))\n"
    )


def _emit_tf_drained_links_between(intent: Intent) -> str:
    start, end = _frames_window_exprs(intent)
    return _FRAMES_AT + _EDGE_PAIRS + _HAS_PAIR + (
        f"start = {start}\n"
        f"end = {end}\n"
        "earlier = edge_pairs(frames_at(start)['edges_df'])\n"
        "later = edge_pairs(frames_at(end)['edges_df'])\n"
        "drained = set()\n"
        "for snap in snapshots:\n"
        "    if not (start < snap['time'] < end):\n"
        "        continue\n"
        "    present = edge_pairs(snap['edges_df'])\n"
        "    for u, v in earlier:\n"
        "        if has_pair(later, u, v) and not has_pair(present, u, v):\n"
        "            drained.add((str(u), str(v)))\n"
        "result = sorted([u, v] for u, v in drained)\n"
    )


def _emit_tf_drained_nodes_between(intent: Intent) -> str:
    start, end = _frames_window_exprs(intent)
    return _FRAMES_AT + (
        f"start = {start}\n"
        f"end = {end}\n"
        "earlier = set(frames_at(start)['nodes_df']['id'].tolist())\n"
        "later = set(frames_at(end)['nodes_df']['id'].tolist())\n"
        "drained = set()\n"
        "for snap in snapshots:\n"
        "    if not (start < snap['time'] < end):\n"
        "        continue\n"
        "    present = set(snap['nodes_df']['id'].tolist())\n"
        "    for node in earlier:\n"
        "        if node in later and node not in present:\n"
        "            drained.add(str(node))\n"
        "result = sorted(drained)\n"
    )


_FRAMES_REGION_TOTALS = (
    "def region_totals(snap, key):\n"
    "    nodes_df = snap['nodes_df']\n"
    "    edges_df = snap['edges_df']\n"
    "    totals = {}\n"
    "    if 'region' not in nodes_df or key not in edges_df:\n"
    "        return totals\n"
    "    region_of = dict(zip(nodes_df['id'].tolist(), nodes_df['region'].tolist()))\n"
    "    for u, v, value in zip(edges_df['source'].tolist(), edges_df['target'].tolist(),\n"
    "                           edges_df[key].tolist()):\n"
    "        ru = region_of.get(u)\n"
    "        rv = region_of.get(v)\n"
    "        if ru is None or rv is None:\n"
    "            continue\n"
    "        bucket = ru if ru == rv else '-'.join(sorted((ru, rv)))\n"
    "        totals[bucket] = totals.get(bucket, 0) + (value or 0)\n"
    "    return totals\n"
)


def _emit_tf_region_traffic_between(intent: Intent) -> str:
    key = intent.param("key", "bytes")
    start, end = _frames_window_exprs(intent)
    return _FRAMES_AT + _FRAMES_REGION_TOTALS + (
        f"before = region_totals(frames_at({start}), {key!r})\n"
        f"after = region_totals(frames_at({end}), {key!r})\n"
        "result = {bucket: round(after.get(bucket, 0) - before.get(bucket, 0), 6)\n"
        "          for bucket in sorted(set(before) | set(after))}\n"
    )


def _emit_tf_top_region_by_traffic_growth(intent: Intent) -> str:
    return _emit_tf_region_traffic_between(intent) + (
        "deltas = result\n"
        "result = None\n"
        "if deltas:\n"
        "    result = min(deltas, key=lambda bucket: (-deltas[bucket], bucket))\n"
    )


def _emit_tf_entity_count_at(intent: Intent) -> str:
    entity_type = intent.param("entity_type", "EK_PACKET_SWITCH")
    return _FRAMES_AT + (
        f"nodes_df = frames_at({_frames_at_expr(intent)})['nodes_df']\n"
        f"result = len(nodes_df[nodes_df['type'] == {entity_type!r}])\n"
    )


def _emit_tf_entity_capacity_at(intent: Intent) -> str:
    entity_type = intent.param("entity_type", "EK_PACKET_SWITCH")
    return _FRAMES_AT + (
        f"nodes_df = frames_at({_frames_at_expr(intent)})['nodes_df']\n"
        f"entities = nodes_df[nodes_df['type'] == {entity_type!r}]\n"
        "result = sum(value for value in entities['capacity'].tolist()\n"
        "             if value is not None) if 'capacity' in entities else 0\n"
    )


def _emit_tf_orphaned_ports_at(intent: Intent) -> str:
    return _FRAMES_AT + (
        f"snap = frames_at({_frames_at_expr(intent)})\n"
        "nodes_df = snap['nodes_df']\n"
        "edges_df = snap['edges_df']\n"
        "contained = set()\n"
        "if 'relationship' in edges_df:\n"
        "    for target, relationship in zip(edges_df['target'].tolist(),\n"
        "                                    edges_df['relationship'].tolist()):\n"
        "        if relationship == 'RK_CONTAINS':\n"
        "            contained.add(target)\n"
        "ports = nodes_df[nodes_df['type'] == 'EK_PORT']\n"
        "result = sorted(str(port) for port in ports['id'].tolist()\n"
        "                if port not in contained)\n"
    )


#: temporal intent name -> template over the serialized timeline namespace
TEMPORAL_TEMPLATES: Dict[str, Callable[[Intent], str]] = {
    "node_count_at": _emit_tf_node_count_at,
    "edge_count_at": _emit_tf_edge_count_at,
    "snapshot_count": _emit_tf_snapshot_count,
    "isolated_nodes_at": _emit_tf_isolated_nodes_at,
    "peak_traffic_time": _emit_tf_peak_traffic_time,
    "failed_links_since": _emit_tf_failed_links_since,
    "restored_links_since": _emit_tf_restored_links_since,
    "churned_nodes_between": _emit_tf_churned_nodes_between,
    "capacity_drop_at": _emit_tf_capacity_drop_at,
    "degraded_links_at": _emit_tf_degraded_links_at,
    "traffic_change_between": _emit_tf_traffic_change_between,
    "failed_srlgs_at": _emit_tf_failed_srlgs_at,
    "srlg_links_down_at": _emit_tf_srlg_links_down_at,
    "drained_links_between": _emit_tf_drained_links_between,
    "drained_nodes_between": _emit_tf_drained_nodes_between,
    "region_traffic_between": _emit_tf_region_traffic_between,
    "top_region_by_traffic_growth": _emit_tf_top_region_by_traffic_growth,
    "entity_count_at": _emit_tf_entity_count_at,
    "entity_capacity_at": _emit_tf_entity_capacity_at,
    "orphaned_ports_at": _emit_tf_orphaned_ports_at,
}


def supported_temporal_intents() -> List[str]:
    """Temporal intent names this emitter can generate code for."""
    return sorted(TEMPORAL_TEMPLATES)


def emit_temporal(intent: Intent) -> str:
    """Render timeline-aware dataframe code for a temporal *intent*."""
    if intent.name not in TEMPORAL_TEMPLATES:
        raise KeyError(
            f"frames emitter does not support temporal intent {intent.name!r}")
    return TEMPORAL_TEMPLATES[intent.name](intent)
