"""The code-synthesis engine: intent -> backend-specific program."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Union

from repro.graph import PropertyGraph, graph_to_dict
from repro.obs import span
from repro.synthesis import frames_emitter, networkx_emitter, sql_emitter
from repro.synthesis.intents import Intent, IntentParseError, parse_query
from repro.synthesis.reference import (
    ReferenceOutcome,
    evaluate_reference,
    supported_reference_intents,
)
from repro.utils.validation import ValidationError, require_in


class UnsupportedQueryError(ValidationError):
    """Raised when no code can be produced for a (query, backend) pair."""


#: backends the engine can emit code for (strawman is answered, not coded)
CODE_BACKENDS = ("networkx", "pandas", "sql")

#: backends the engine can emit *timeline-aware* code for.  The dataframe
#: backend is named "frames" on the temporal path (the CLI surface of
#: ``repro benchmark --temporal --backend``); it maps to the same emitter as
#: the static "pandas" backend.
TEMPORAL_CODE_BACKENDS = ("frames", "networkx")


@dataclass
class GeneratedProgram:
    """One synthesized program plus the language it is written in."""

    code: str
    language: str          # "python" or "sql"
    backend: str
    intent: Intent

    def as_markdown(self) -> str:
        """Render as the fenced block a real LLM response would contain."""
        return f"```{self.language}\n{self.code}\n```"


class CodeSynthesisEngine:
    """Generate correct code (or direct answers) for supported intents.

    This engine is what a simulated LLM uses when the calibration table says
    the model answers correctly.  It is also usable standalone — e.g. the CLI
    and examples call it directly for a no-LLM, rule-based experience.
    """

    _EMITTERS = {
        "networkx": networkx_emitter,
        "pandas": frames_emitter,
        "sql": sql_emitter,
    }

    # ------------------------------------------------------------------
    def resolve_intent(self, query: Union[str, Intent]) -> Intent:
        """Accept either a pre-parsed intent or free-form query text."""
        if isinstance(query, Intent):
            return query
        return parse_query(query)

    def supports(self, query: Union[str, Intent], backend: str) -> bool:
        """Whether correct code can be produced for this query and backend."""
        require_in(backend, CODE_BACKENDS + ("strawman",), "backend")
        try:
            intent = self.resolve_intent(query)
        except IntentParseError:
            return False
        if backend == "strawman":
            return intent.name in supported_reference_intents()
        emitter = self._EMITTERS[backend]
        return intent.name in emitter.TEMPLATES

    def supported_intents(self, backend: str) -> List[str]:
        """All intent names supported for one backend."""
        require_in(backend, CODE_BACKENDS, "backend")
        return self._EMITTERS[backend].supported_intents()

    # ------------------------------------------------------------------
    def generate(self, query: Union[str, Intent], backend: str) -> GeneratedProgram:
        """Produce a correct program for *query* in *backend*.

        Raises :class:`UnsupportedQueryError` when the intent is unknown or
        the backend cannot express it.
        """
        require_in(backend, CODE_BACKENDS, "backend")
        attrs: Dict[str, object] = {"backend": backend}
        with span("synthesis.emit", attrs=attrs):
            try:
                intent = self.resolve_intent(query)
            except IntentParseError as exc:
                raise UnsupportedQueryError(str(exc)) from exc
            attrs["intent"] = intent.name
            emitter = self._EMITTERS[backend]
            try:
                code = emitter.emit(intent)
            except KeyError as exc:
                raise UnsupportedQueryError(
                    f"backend {backend!r} cannot express intent {intent.name!r}") from exc
        language = "sql" if backend == "sql" else "python"
        return GeneratedProgram(code=code, language=language, backend=backend, intent=intent)

    # ------------------------------------------------------------------
    # timeline-aware synthesis
    # ------------------------------------------------------------------
    _TEMPORAL_EMITTERS = {
        "networkx": networkx_emitter,
        "frames": frames_emitter,
    }

    def supports_temporal(self, intent: Intent, backend: str) -> bool:
        """Whether timeline-aware code can be produced for this intent."""
        require_in(backend, TEMPORAL_CODE_BACKENDS, "backend")
        return intent.name in self._TEMPORAL_EMITTERS[backend].TEMPORAL_TEMPLATES

    def generate_temporal(self, intent: Intent, backend: str) -> GeneratedProgram:
        """Produce a correct timeline-aware program for a temporal *intent*.

        The emitted Python consumes the serialized-timeline namespace
        (``snapshots`` + ``deltas`` — see :mod:`repro.synthesis.temporal`)
        instead of a single-graph namespace.  Raises
        :class:`UnsupportedQueryError` when the backend cannot express the
        intent.
        """
        require_in(backend, TEMPORAL_CODE_BACKENDS, "backend")
        with span("synthesis.emit_temporal",
                  attrs={"backend": backend, "intent": intent.name}):
            emitter = self._TEMPORAL_EMITTERS[backend]
            try:
                code = emitter.emit_temporal(intent)
            except KeyError as exc:
                raise UnsupportedQueryError(
                    f"backend {backend!r} cannot express temporal intent "
                    f"{intent.name!r}") from exc
        return GeneratedProgram(code=code, language="python", backend=backend,
                                intent=intent)

    # ------------------------------------------------------------------
    def answer_directly(self, query: Union[str, Intent], graph: PropertyGraph) -> str:
        """The strawman path: answer from the data instead of emitting code.

        Returns a JSON document containing either the answer value or the
        updated graph, which is what the benchmark's evaluator parses when
        scoring the strawman baseline.
        """
        try:
            intent = self.resolve_intent(query)
        except IntentParseError as exc:
            raise UnsupportedQueryError(str(exc)) from exc
        with span("synthesis.direct", attrs={"intent": intent.name}):
            outcome: ReferenceOutcome = evaluate_reference(graph, intent)
        payload: Dict[str, object] = {"kind": outcome.kind}
        if outcome.kind in ("value", "both"):
            payload["value"] = outcome.value
        if outcome.kind in ("graph", "both") and outcome.graph is not None:
            payload["graph"] = graph_to_dict(outcome.graph)
        return json.dumps(payload, default=str, sort_keys=True)

    def reference_outcome(self, query: Union[str, Intent],
                          graph: PropertyGraph) -> ReferenceOutcome:
        """Golden outcome of *query* on *graph* (used by the benchmark)."""
        intent = self.resolve_intent(query)
        return evaluate_reference(graph, intent)
