"""Code emitter for the NetworkX backend.

Each template renders Python that operates on ``G`` (a ``networkx.DiGraph``
whose nodes/edges carry the application's attributes), mutates ``G`` in place
for manipulation intents, and leaves analysis answers in ``result`` — exactly
what the code-generation prompt instructs the LLM to do.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.synthesis.intents import Intent


def _emit_count_nodes(intent: Intent) -> str:
    return "result = G.number_of_nodes()\n"


def _emit_count_edges(intent: Intent) -> str:
    return "result = G.number_of_edges()\n"


def _emit_total_bytes(intent: Intent) -> str:
    return "result = sum(data.get('bytes', 0) for _, _, data in G.edges(data=True))\n"


def _emit_label_nodes_by_prefix(intent: Intent) -> str:
    prefix = intent.param("prefix")
    key = intent.param("key", "app")
    value = intent.param("value", "production")
    return (
        f"prefix = {prefix!r}\n"
        "for node, data in G.nodes(data=True):\n"
        "    address = data.get('address', '')\n"
        "    if address.startswith(prefix + '.') or address == prefix:\n"
        f"        G.nodes[node][{key!r}] = {value!r}\n"
    )


def _emit_list_nodes_by_prefix(intent: Intent) -> str:
    prefix = intent.param("prefix")
    return (
        f"prefix = {prefix!r}\n"
        "result = sorted(\n"
        "    data['address'] for _, data in G.nodes(data=True)\n"
        "    if data.get('address', '').startswith(prefix + '.') or data.get('address') == prefix\n"
        ")\n"
    )


def _emit_max_bytes_edge(intent: Intent) -> str:
    return (
        "best = None\n"
        "for u, v, data in G.edges(data=True):\n"
        "    key = (data.get('bytes', 0), G.nodes[u].get('address', str(u)),\n"
        "           G.nodes[v].get('address', str(v)))\n"
        "    if best is None or key[0] > best[0]:\n"
        "        best = key\n"
        "result = [] if best is None else [best[1], best[2]]\n"
    )


def _emit_count_nodes_of_type(intent: Intent) -> str:
    type_name = intent.param("type_name")
    return (f"result = sum(1 for _, data in G.nodes(data=True) "
            f"if data.get('type') == {type_name!r})\n")


def _emit_list_isolated_nodes(intent: Intent) -> str:
    return (
        "result = sorted(\n"
        "    G.nodes[node].get('address', str(node)) for node in G.nodes()\n"
        "    if G.in_degree(node) == 0 and G.out_degree(node) == 0\n"
        ")\n"
    )


def _emit_color_by_prefix16(intent: Intent) -> str:
    return (
        "prefixes = sorted({'.'.join(data['address'].split('.')[:2])\n"
        "                   for _, data in G.nodes(data=True) if 'address' in data})\n"
        "color_of = {prefix: 'color-' + str(index) for index, prefix in enumerate(prefixes)}\n"
        "for node, data in G.nodes(data=True):\n"
        "    if 'address' in data:\n"
        "        G.nodes[node]['color'] = color_of['.'.join(data['address'].split('.')[:2])]\n"
    )


def _emit_top_k_talkers(intent: Intent) -> str:
    k = intent.param("k", 3)
    return (
        "totals = {node: 0 for node in G.nodes()}\n"
        "for u, _, data in G.edges(data=True):\n"
        "    totals[u] += data.get('bytes', 0)\n"
        "ranked = sorted(G.nodes(), key=lambda n: (-totals[n], G.nodes[n].get('address', str(n))))\n"
        f"result = [G.nodes[n].get('address', str(n)) for n in ranked[:{k}]]\n"
    )


def _emit_peer_count_per_node(intent: Intent) -> str:
    return (
        "result = {}\n"
        "for node in G.nodes():\n"
        "    peers = set(G.successors(node)) | set(G.predecessors(node))\n"
        "    result[G.nodes[node].get('address', str(node))] = len(peers)\n"
    )


def _emit_bytes_per_prefix16(intent: Intent) -> str:
    return (
        "result = {}\n"
        "for u, _, data in G.edges(data=True):\n"
        "    prefix = '.'.join(G.nodes[u]['address'].split('.')[:2])\n"
        "    result[prefix] = result.get(prefix, 0) + data.get('bytes', 0)\n"
    )


def _emit_heavy_edges_above(intent: Intent) -> str:
    threshold = intent.param("threshold", 500_000)
    return (
        "pairs = []\n"
        "for u, v, data in G.edges(data=True):\n"
        f"    if data.get('bytes', 0) > {threshold}:\n"
        "        pairs.append([G.nodes[u].get('address', str(u)),\n"
        "                      G.nodes[v].get('address', str(v))])\n"
        "result = sorted(pairs)\n"
    )


def _emit_remove_light_edges(intent: Intent) -> str:
    threshold = intent.param("threshold", 1000)
    return (
        "to_remove = [(u, v) for u, v, data in G.edges(data=True)\n"
        f"             if data.get('bytes', 0) < {threshold}]\n"
        "G.remove_edges_from(to_remove)\n"
    )


def _emit_avg_bytes_by_source_type(intent: Intent) -> str:
    return (
        "sums = {}\n"
        "counts = {}\n"
        "for u, _, data in G.edges(data=True):\n"
        "    source_type = G.nodes[u].get('type', 'unknown')\n"
        "    sums[source_type] = sums.get(source_type, 0) + data.get('bytes', 0)\n"
        "    counts[source_type] = counts.get(source_type, 0) + 1\n"
        "result = {key: sums[key] / counts[key] for key in sums}\n"
    )


def _emit_reciprocal_pair_count(intent: Intent) -> str:
    return (
        "pairs = set()\n"
        "for u, v in G.edges():\n"
        "    if u != v and G.has_edge(v, u):\n"
        "        pairs.add(frozenset((u, v)))\n"
        "result = len(pairs)\n"
    )


def _emit_cluster_nodes_by_total_bytes(intent: Intent) -> str:
    clusters = intent.param("clusters", 5)
    return (
        "totals = {node: 0 for node in G.nodes()}\n"
        "for u, v, data in G.edges(data=True):\n"
        "    totals[u] += data.get('bytes', 0)\n"
        "    totals[v] += data.get('bytes', 0)\n"
        "result = {}\n"
        "if totals:\n"
        "    low = min(totals.values())\n"
        "    high = max(totals.values())\n"
        "    span = (high - low) or 1.0\n"
        "    for node, total in totals.items():\n"
        f"        index = int((total - low) / span * {clusters})\n"
        f"        result[G.nodes[node].get('address', str(node))] = min({clusters} - 1, index)\n"
    )


def _emit_shortest_path_hops(intent: Intent) -> str:
    source = intent.param("source")
    target = intent.param("target")
    return (
        "import networkx as nx\n"
        "undirected = G.to_undirected()\n"
        "try:\n"
        f"    result = nx.shortest_path_length(undirected, {source!r}, {target!r})\n"
        "except (nx.NetworkXNoPath, nx.NodeNotFound):\n"
        "    result = -1\n"
    )


def _emit_largest_wcc(intent: Intent) -> str:
    return (
        "import networkx as nx\n"
        "components = list(nx.weakly_connected_components(G))\n"
        "result = max((len(c) for c in components), default=0)\n"
    )


def _emit_heavy_hitter_outliers(intent: Intent) -> str:
    return (
        "import math\n"
        "totals = {node: 0 for node in G.nodes()}\n"
        "for u, _, data in G.edges(data=True):\n"
        "    totals[u] += data.get('bytes', 0)\n"
        "values = list(totals.values())\n"
        "result = []\n"
        "if values:\n"
        "    mean = sum(values) / len(values)\n"
        "    std = math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))\n"
        "    result = sorted(G.nodes[node].get('address', str(node))\n"
        "                    for node, total in totals.items() if total > mean + 2 * std)\n"
    )


def _emit_remove_highest_degree_node(intent: Intent) -> str:
    return (
        "ranked = sorted(G.nodes(), key=lambda n: (-(G.in_degree(n) + G.out_degree(n)), str(n)))\n"
        "if ranked:\n"
        "    G.remove_node(ranked[0])\n"
        "result = G.number_of_edges()\n"
    )


def _emit_top_betweenness_node(intent: Intent) -> str:
    return (
        "import networkx as nx\n"
        "centrality = nx.betweenness_centrality(G)\n"
        "result = None\n"
        "if centrality:\n"
        "    best = sorted(centrality.items(), key=lambda item: (-item[1], str(item[0])))[0][0]\n"
        "    result = G.nodes[best].get('address', str(best))\n"
    )


# ---------------------------------------------------------------------------
# MALT intents
# ---------------------------------------------------------------------------
def _emit_list_ports_of_switch(intent: Intent) -> str:
    switch = intent.param("switch")
    return (
        f"switch = {switch!r}\n"
        "result = []\n"
        "if switch in G:\n"
        "    result = sorted(\n"
        "        child for child in G.successors(switch)\n"
        "        if G.edges[switch, child].get('relationship') == 'RK_CONTAINS'\n"
        "        and G.nodes[child].get('type') == 'EK_PORT'\n"
        "    )\n"
    )


def _emit_count_entities_of_type(intent: Intent) -> str:
    entity_type = intent.param("entity_type")
    return (f"result = sum(1 for _, data in G.nodes(data=True) "
            f"if data.get('type') == {entity_type!r})\n")


def _emit_switches_controlled_by(intent: Intent) -> str:
    control_point = intent.param("control_point")
    return (
        f"cp = {control_point!r}\n"
        "result = []\n"
        "if cp in G:\n"
        "    result = sorted(\n"
        "        target for target in G.successors(cp)\n"
        "        if G.edges[cp, target].get('relationship') == 'RK_CONTROLS'\n"
        "    )\n"
    )


def _emit_top2_chassis_by_capacity(intent: Intent) -> str:
    return (
        "chassis = [(node, data.get('capacity', 0)) for node, data in G.nodes(data=True)\n"
        "           if data.get('type') == 'EK_CHASSIS']\n"
        "chassis.sort(key=lambda item: (-item[1], str(item[0])))\n"
        "result = [node for node, _ in chassis[:2]]\n"
    )


def _emit_port_count_per_chassis_in_rack(intent: Intent) -> str:
    rack = intent.param("rack")
    return (
        f"rack = {rack!r}\n"
        "def contained(parent):\n"
        "    return [child for child in G.successors(parent)\n"
        "            if G.edges[parent, child].get('relationship') == 'RK_CONTAINS']\n"
        "result = {}\n"
        "if rack in G:\n"
        "    for chassis in contained(rack):\n"
        "        if G.nodes[chassis].get('type') != 'EK_CHASSIS':\n"
        "            continue\n"
        "        count = 0\n"
        "        stack = contained(chassis)\n"
        "        while stack:\n"
        "            current = stack.pop()\n"
        "            if G.nodes[current].get('type') == 'EK_PORT':\n"
        "                count += 1\n"
        "            stack.extend(contained(current))\n"
        "        result[chassis] = count\n"
    )


def _emit_capacity_per_datacenter(intent: Intent) -> str:
    return (
        "def contained(parent):\n"
        "    return [child for child in G.successors(parent)\n"
        "            if G.edges[parent, child].get('relationship') == 'RK_CONTAINS']\n"
        "result = {}\n"
        "for node, data in G.nodes(data=True):\n"
        "    if data.get('type') != 'EK_DATACENTER':\n"
        "        continue\n"
        "    total = 0\n"
        "    stack = contained(node)\n"
        "    while stack:\n"
        "        current = stack.pop()\n"
        "        if G.nodes[current].get('type') == 'EK_PACKET_SWITCH':\n"
        "            total += G.nodes[current].get('capacity', 0)\n"
        "        stack.extend(contained(current))\n"
        "    result[node] = total\n"
    )


def _emit_remove_switch_and_rebalance(intent: Intent) -> str:
    switch = intent.param("switch")
    return (
        f"switch = {switch!r}\n"
        "if switch in G:\n"
        "    capacity = G.nodes[switch].get('capacity', 0)\n"
        "    chassis = None\n"
        "    for parent in G.predecessors(switch):\n"
        "        if G.edges[parent, switch].get('relationship') == 'RK_CONTAINS':\n"
        "            chassis = parent\n"
        "            break\n"
        "    G.remove_node(switch)\n"
        "    if chassis is not None:\n"
        "        siblings = [child for child in G.successors(chassis)\n"
        "                    if G.edges[chassis, child].get('relationship') == 'RK_CONTAINS'\n"
        "                    and G.nodes[child].get('type') == 'EK_PACKET_SWITCH']\n"
        "        if siblings:\n"
        "            share = capacity / len(siblings)\n"
        "            for sibling in siblings:\n"
        "                G.nodes[sibling]['capacity'] = G.nodes[sibling].get('capacity', 0) + share\n"
    )


def _emit_down_port_fraction_per_datacenter(intent: Intent) -> str:
    return (
        "def contained(parent):\n"
        "    return [child for child in G.successors(parent)\n"
        "            if G.edges[parent, child].get('relationship') == 'RK_CONTAINS']\n"
        "result = {}\n"
        "for node, data in G.nodes(data=True):\n"
        "    if data.get('type') != 'EK_DATACENTER':\n"
        "        continue\n"
        "    ports = []\n"
        "    stack = contained(node)\n"
        "    while stack:\n"
        "        current = stack.pop()\n"
        "        if G.nodes[current].get('type') == 'EK_PORT':\n"
        "            ports.append(current)\n"
        "        stack.extend(contained(current))\n"
        "    if not ports:\n"
        "        result[node] = 0.0\n"
        "        continue\n"
        "    down = sum(1 for port in ports if G.nodes[port].get('status') == 'down')\n"
        "    result[node] = down / len(ports)\n"
    )


def _emit_add_switch_to_least_loaded_chassis(intent: Intent) -> str:
    name = intent.param("name", "new-switch-1")
    capacity = intent.param("capacity", 100)
    return (
        "chassis = [(node, data.get('capacity', 0)) for node, data in G.nodes(data=True)\n"
        "           if data.get('type') == 'EK_CHASSIS']\n"
        "if chassis:\n"
        "    chassis.sort(key=lambda item: (item[1], str(item[0])))\n"
        "    target_chassis = chassis[0][0]\n"
        f"    G.add_node({name!r}, type='EK_PACKET_SWITCH', name={name!r}, capacity={capacity})\n"
        f"    G.add_edge(target_chassis, {name!r}, relationship='RK_CONTAINS')\n"
        f"    G.nodes[target_chassis]['capacity'] = G.nodes[target_chassis].get('capacity', 0) + {capacity}\n"
    )


#: intent name -> template
TEMPLATES: Dict[str, Callable[[Intent], str]] = {
    "count_nodes": _emit_count_nodes,
    "count_edges": _emit_count_edges,
    "total_bytes": _emit_total_bytes,
    "label_nodes_by_prefix": _emit_label_nodes_by_prefix,
    "list_nodes_by_prefix": _emit_list_nodes_by_prefix,
    "max_bytes_edge": _emit_max_bytes_edge,
    "count_nodes_of_type": _emit_count_nodes_of_type,
    "list_isolated_nodes": _emit_list_isolated_nodes,
    "color_by_prefix16": _emit_color_by_prefix16,
    "top_k_talkers": _emit_top_k_talkers,
    "peer_count_per_node": _emit_peer_count_per_node,
    "bytes_per_prefix16": _emit_bytes_per_prefix16,
    "heavy_edges_above": _emit_heavy_edges_above,
    "remove_light_edges": _emit_remove_light_edges,
    "avg_bytes_by_source_type": _emit_avg_bytes_by_source_type,
    "reciprocal_pair_count": _emit_reciprocal_pair_count,
    "cluster_nodes_by_total_bytes": _emit_cluster_nodes_by_total_bytes,
    "shortest_path_hops": _emit_shortest_path_hops,
    "largest_weakly_connected_component": _emit_largest_wcc,
    "heavy_hitter_outliers": _emit_heavy_hitter_outliers,
    "remove_highest_degree_node": _emit_remove_highest_degree_node,
    "top_betweenness_node": _emit_top_betweenness_node,
    "list_ports_of_switch": _emit_list_ports_of_switch,
    "count_entities_of_type": _emit_count_entities_of_type,
    "switches_controlled_by": _emit_switches_controlled_by,
    "top2_chassis_by_capacity": _emit_top2_chassis_by_capacity,
    "port_count_per_chassis_in_rack": _emit_port_count_per_chassis_in_rack,
    "capacity_per_datacenter": _emit_capacity_per_datacenter,
    "remove_switch_and_rebalance": _emit_remove_switch_and_rebalance,
    "down_port_fraction_per_datacenter": _emit_down_port_fraction_per_datacenter,
    "add_switch_to_least_loaded_chassis": _emit_add_switch_to_least_loaded_chassis,
}


def supported_intents() -> List[str]:
    """Intent names this emitter can generate code for."""
    return sorted(TEMPLATES)


def emit(intent: Intent) -> str:
    """Render NetworkX-backend Python code for *intent*."""
    if intent.name not in TEMPLATES:
        raise KeyError(f"networkx emitter does not support intent {intent.name!r}")
    return TEMPLATES[intent.name](intent)


# ---------------------------------------------------------------------------
# temporal intents — programs over a serialized ScenarioTimeline
# ---------------------------------------------------------------------------
# Temporal programs run against ``snapshots`` (a list of dicts with ``time``,
# ``digest``, ``directed``, ``attributes`` and a NetworkX ``graph`` exposed in
# the timeline's stored edge orientation) and ``deltas`` (the aligned
# structural diffs, ``None`` for the initial snapshot) instead of a single
# ``G`` — see DESIGN.md "Timeline-aware synthesis" for the contract.
# Templates that *diff* edge sets compare raw stored tuples (matching
# ``graph.diff``); templates that ask "is this link up?" go through the
# ``has_link`` helper, which is symmetric on undirected networks.

#: snapshot-anchoring helper shared by every timestamped temporal template
_GRAPH_AT = (
    "def graph_at(t):\n"
    "    chosen = snapshots[0]\n"
    "    for snap in snapshots:\n"
    "        if snap['time'] <= t:\n"
    "            chosen = snap\n"
    "    return chosen['graph']\n"
)

#: link-presence helper: symmetric when the network is undirected
_HAS_LINK = (
    "def has_link(G, u, v):\n"
    "    if G.has_edge(u, v):\n"
    "        return True\n"
    "    return (not snapshots[0]['directed']) and G.has_edge(v, u)\n"
)

#: link-attribute lookup honouring undirected symmetry
_LINK_DATA = (
    "def link_data(G, u, v):\n"
    "    if G.has_edge(u, v):\n"
    "        return G.edges[u, v]\n"
    "    if (not snapshots[0]['directed']) and G.has_edge(v, u):\n"
    "        return G.edges[v, u]\n"
    "    return None\n"
)


def _window_exprs(intent: Intent) -> tuple:
    """Literal (start, end) expressions of an interval intent's window.

    Parameter precedence is resolved by :func:`repro.synthesis.intents.
    temporal_window` (shared with the reference semantics); unbound ends
    render as the first/last snapshot-time expressions.
    """
    from repro.synthesis.intents import temporal_window

    start, end = temporal_window(intent)
    return (repr(float(start)) if start is not None else "snapshots[0]['time']",
            repr(float(end)) if end is not None else "snapshots[-1]['time']")


def _at_expr(intent: Intent) -> str:
    return repr(float(intent.param("at", 0.0)))


def _emit_t_node_count_at(intent: Intent) -> str:
    return _GRAPH_AT + f"result = graph_at({_at_expr(intent)}).number_of_nodes()\n"


def _emit_t_edge_count_at(intent: Intent) -> str:
    return _GRAPH_AT + f"result = graph_at({_at_expr(intent)}).number_of_edges()\n"


def _emit_t_snapshot_count(intent: Intent) -> str:
    return "result = len(snapshots)\n"


def _emit_t_isolated_nodes_at(intent: Intent) -> str:
    return _GRAPH_AT + (
        f"G = graph_at({_at_expr(intent)})\n"
        "result = sorted(str(node) for node in G.nodes() if G.degree(node) == 0)\n"
    )


def _emit_t_peak_traffic_time(intent: Intent) -> str:
    key = intent.param("key", "bytes")
    return (
        "best_time = None\n"
        "best_total = None\n"
        "for snap in snapshots:\n"
        f"    total = sum(data.get({key!r}, 0)\n"
        "                for _, _, data in snap['graph'].edges(data=True))\n"
        "    if best_total is None or total > best_total:\n"
        "        best_time = snap['time']\n"
        "        best_total = total\n"
        "result = best_time\n"
    )


def _emit_t_failed_links_since(intent: Intent) -> str:
    start, end = _window_exprs(intent)
    return _GRAPH_AT + (
        f"earlier = graph_at({start})\n"
        f"later = graph_at({end})\n"
        "later_pairs = set(later.edges())\n"
        "result = sorted([str(u), str(v)] for u, v in earlier.edges()\n"
        "                if (u, v) not in later_pairs)\n"
    )


def _emit_t_restored_links_since(intent: Intent) -> str:
    start, end = _window_exprs(intent)
    return _GRAPH_AT + (
        f"earlier = graph_at({start})\n"
        f"later = graph_at({end})\n"
        "earlier_pairs = set(earlier.edges())\n"
        "result = sorted([str(u), str(v)] for u, v in later.edges()\n"
        "                if (u, v) not in earlier_pairs)\n"
    )


def _emit_t_churned_nodes_between(intent: Intent) -> str:
    start, end = _window_exprs(intent)
    return _GRAPH_AT + (
        f"earlier = graph_at({start})\n"
        f"later = graph_at({end})\n"
        "result = {\n"
        "    'departed': sorted(str(n) for n in earlier.nodes()\n"
        "                       if not later.has_node(n)),\n"
        "    'joined': sorted(str(n) for n in later.nodes()\n"
        "                     if not earlier.has_node(n)),\n"
        "}\n"
    )


def _emit_t_capacity_drop_at(intent: Intent) -> str:
    attribute = intent.param("attribute", "capacity_gbps")
    return _GRAPH_AT + (
        f"baseline = sum(data.get({attribute!r}, 0)\n"
        "               for _, _, data in snapshots[0]['graph'].edges(data=True))\n"
        f"current = sum(data.get({attribute!r}, 0)\n"
        f"              for _, _, data in graph_at({_at_expr(intent)}).edges(data=True))\n"
        "result = round(baseline - current, 6)\n"
    )


def _emit_t_degraded_links_at(intent: Intent) -> str:
    attribute = intent.param("attribute", "capacity_gbps")
    return _GRAPH_AT + _LINK_DATA + (
        "initial = snapshots[0]['graph']\n"
        f"current = graph_at({_at_expr(intent)})\n"
        "degraded = []\n"
        "for u, v, data in current.edges(data=True):\n"
        "    original = link_data(initial, u, v)\n"
        "    if original is None:\n"
        "        continue\n"
        f"    before = original.get({attribute!r})\n"
        f"    now = data.get({attribute!r})\n"
        "    if before is not None and now is not None and now < before:\n"
        "        degraded.append([str(u), str(v)])\n"
        "result = sorted(degraded)\n"
    )


def _emit_t_traffic_change_between(intent: Intent) -> str:
    key = intent.param("key", "bytes")
    start, end = _window_exprs(intent)
    return _GRAPH_AT + (
        f"before = sum(data.get({key!r}, 0)\n"
        f"             for _, _, data in graph_at({start}).edges(data=True))\n"
        f"after = sum(data.get({key!r}, 0)\n"
        f"            for _, _, data in graph_at({end}).edges(data=True))\n"
        "result = round(after - before, 6)\n"
    )


def _emit_t_failed_srlgs_at(intent: Intent) -> str:
    return _GRAPH_AT + _HAS_LINK + (
        "srlgs = snapshots[0]['attributes'].get('srlgs', {})\n"
        f"current = graph_at({_at_expr(intent)})\n"
        "result = sorted(\n"
        "    name for name, members in srlgs.items()\n"
        "    if members and all(not has_link(current, source, target)\n"
        "                       for source, target in members))\n"
    )


def _emit_t_srlg_links_down_at(intent: Intent) -> str:
    group = intent.param("group")
    return _GRAPH_AT + _HAS_LINK + (
        f"members = snapshots[0]['attributes'].get('srlgs', {{}}).get({group!r}, [])\n"
        f"current = graph_at({_at_expr(intent)})\n"
        "result = sorted([str(source), str(target)] for source, target in members\n"
        "                if not has_link(current, source, target))\n"
    )


def _emit_t_drained_links_between(intent: Intent) -> str:
    start, end = _window_exprs(intent)
    return _GRAPH_AT + _HAS_LINK + (
        f"start = {start}\n"
        f"end = {end}\n"
        "earlier = graph_at(start)\n"
        "later = graph_at(end)\n"
        "drained = set()\n"
        "for snap in snapshots:\n"
        "    if not (start < snap['time'] < end):\n"
        "        continue\n"
        "    for u, v in earlier.edges():\n"
        "        if has_link(later, u, v) and not has_link(snap['graph'], u, v):\n"
        "            drained.add((str(u), str(v)))\n"
        "result = sorted([u, v] for u, v in drained)\n"
    )


def _emit_t_drained_nodes_between(intent: Intent) -> str:
    start, end = _window_exprs(intent)
    return _GRAPH_AT + (
        f"start = {start}\n"
        f"end = {end}\n"
        "earlier = graph_at(start)\n"
        "later = graph_at(end)\n"
        "drained = set()\n"
        "for snap in snapshots:\n"
        "    if not (start < snap['time'] < end):\n"
        "        continue\n"
        "    for node in earlier.nodes():\n"
        "        if later.has_node(node) and not snap['graph'].has_node(node):\n"
        "            drained.add(str(node))\n"
        "result = sorted(drained)\n"
    )


_REGION_TOTALS = (
    "def region_totals(G, key):\n"
    "    totals = {}\n"
    "    for u, v, data in G.edges(data=True):\n"
    "        ru = G.nodes[u].get('region')\n"
    "        rv = G.nodes[v].get('region')\n"
    "        if ru is None or rv is None:\n"
    "            continue\n"
    "        bucket = ru if ru == rv else '-'.join(sorted((ru, rv)))\n"
    "        totals[bucket] = totals.get(bucket, 0) + data.get(key, 0)\n"
    "    return totals\n"
)


def _emit_t_region_traffic_between(intent: Intent) -> str:
    key = intent.param("key", "bytes")
    start, end = _window_exprs(intent)
    return _GRAPH_AT + _REGION_TOTALS + (
        f"before = region_totals(graph_at({start}), {key!r})\n"
        f"after = region_totals(graph_at({end}), {key!r})\n"
        "result = {bucket: round(after.get(bucket, 0) - before.get(bucket, 0), 6)\n"
        "          for bucket in sorted(set(before) | set(after))}\n"
    )


def _emit_t_top_region_by_traffic_growth(intent: Intent) -> str:
    return _emit_t_region_traffic_between(intent) + (
        "deltas = result\n"
        "result = None\n"
        "if deltas:\n"
        "    result = min(deltas, key=lambda bucket: (-deltas[bucket], bucket))\n"
    )


def _emit_t_entity_count_at(intent: Intent) -> str:
    entity_type = intent.param("entity_type", "EK_PACKET_SWITCH")
    return _GRAPH_AT + (
        f"G = graph_at({_at_expr(intent)})\n"
        "result = sum(1 for _, data in G.nodes(data=True)\n"
        f"             if data.get('type') == {entity_type!r})\n"
    )


def _emit_t_entity_capacity_at(intent: Intent) -> str:
    entity_type = intent.param("entity_type", "EK_PACKET_SWITCH")
    return _GRAPH_AT + (
        f"G = graph_at({_at_expr(intent)})\n"
        "result = sum(data.get('capacity', 0) for _, data in G.nodes(data=True)\n"
        f"             if data.get('type') == {entity_type!r})\n"
    )


def _emit_t_orphaned_ports_at(intent: Intent) -> str:
    return _GRAPH_AT + (
        f"G = graph_at({_at_expr(intent)})\n"
        "orphaned = []\n"
        "for node, data in G.nodes(data=True):\n"
        "    if data.get('type') != 'EK_PORT':\n"
        "        continue\n"
        "    contained = any(\n"
        "        G.edges[parent, node].get('relationship') == 'RK_CONTAINS'\n"
        "        for parent in G.predecessors(node))\n"
        "    if not contained:\n"
        "        orphaned.append(str(node))\n"
        "result = sorted(orphaned)\n"
    )


#: temporal intent name -> template over the serialized timeline namespace
TEMPORAL_TEMPLATES: Dict[str, Callable[[Intent], str]] = {
    "node_count_at": _emit_t_node_count_at,
    "edge_count_at": _emit_t_edge_count_at,
    "snapshot_count": _emit_t_snapshot_count,
    "isolated_nodes_at": _emit_t_isolated_nodes_at,
    "peak_traffic_time": _emit_t_peak_traffic_time,
    "failed_links_since": _emit_t_failed_links_since,
    "restored_links_since": _emit_t_restored_links_since,
    "churned_nodes_between": _emit_t_churned_nodes_between,
    "capacity_drop_at": _emit_t_capacity_drop_at,
    "degraded_links_at": _emit_t_degraded_links_at,
    "traffic_change_between": _emit_t_traffic_change_between,
    "failed_srlgs_at": _emit_t_failed_srlgs_at,
    "srlg_links_down_at": _emit_t_srlg_links_down_at,
    "drained_links_between": _emit_t_drained_links_between,
    "drained_nodes_between": _emit_t_drained_nodes_between,
    "region_traffic_between": _emit_t_region_traffic_between,
    "top_region_by_traffic_growth": _emit_t_top_region_by_traffic_growth,
    "entity_count_at": _emit_t_entity_count_at,
    "entity_capacity_at": _emit_t_entity_capacity_at,
    "orphaned_ports_at": _emit_t_orphaned_ports_at,
}


def supported_temporal_intents() -> List[str]:
    """Temporal intent names this emitter can generate code for."""
    return sorted(TEMPORAL_TEMPLATES)


def emit_temporal(intent: Intent) -> str:
    """Render timeline-aware NetworkX code for a temporal *intent*."""
    if intent.name not in TEMPORAL_TEMPLATES:
        raise KeyError(
            f"networkx emitter does not support temporal intent {intent.name!r}")
    return TEMPORAL_TEMPLATES[intent.name](intent)
