"""Code emitter for the NetworkX backend.

Each template renders Python that operates on ``G`` (a ``networkx.DiGraph``
whose nodes/edges carry the application's attributes), mutates ``G`` in place
for manipulation intents, and leaves analysis answers in ``result`` — exactly
what the code-generation prompt instructs the LLM to do.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.synthesis.intents import Intent


def _emit_count_nodes(intent: Intent) -> str:
    return "result = G.number_of_nodes()\n"


def _emit_count_edges(intent: Intent) -> str:
    return "result = G.number_of_edges()\n"


def _emit_total_bytes(intent: Intent) -> str:
    return "result = sum(data.get('bytes', 0) for _, _, data in G.edges(data=True))\n"


def _emit_label_nodes_by_prefix(intent: Intent) -> str:
    prefix = intent.param("prefix")
    key = intent.param("key", "app")
    value = intent.param("value", "production")
    return (
        f"prefix = {prefix!r}\n"
        "for node, data in G.nodes(data=True):\n"
        "    address = data.get('address', '')\n"
        "    if address.startswith(prefix + '.') or address == prefix:\n"
        f"        G.nodes[node][{key!r}] = {value!r}\n"
    )


def _emit_list_nodes_by_prefix(intent: Intent) -> str:
    prefix = intent.param("prefix")
    return (
        f"prefix = {prefix!r}\n"
        "result = sorted(\n"
        "    data['address'] for _, data in G.nodes(data=True)\n"
        "    if data.get('address', '').startswith(prefix + '.') or data.get('address') == prefix\n"
        ")\n"
    )


def _emit_max_bytes_edge(intent: Intent) -> str:
    return (
        "best = None\n"
        "for u, v, data in G.edges(data=True):\n"
        "    key = (data.get('bytes', 0), G.nodes[u].get('address', str(u)),\n"
        "           G.nodes[v].get('address', str(v)))\n"
        "    if best is None or key[0] > best[0]:\n"
        "        best = key\n"
        "result = [] if best is None else [best[1], best[2]]\n"
    )


def _emit_count_nodes_of_type(intent: Intent) -> str:
    type_name = intent.param("type_name")
    return (f"result = sum(1 for _, data in G.nodes(data=True) "
            f"if data.get('type') == {type_name!r})\n")


def _emit_list_isolated_nodes(intent: Intent) -> str:
    return (
        "result = sorted(\n"
        "    G.nodes[node].get('address', str(node)) for node in G.nodes()\n"
        "    if G.in_degree(node) == 0 and G.out_degree(node) == 0\n"
        ")\n"
    )


def _emit_color_by_prefix16(intent: Intent) -> str:
    return (
        "prefixes = sorted({'.'.join(data['address'].split('.')[:2])\n"
        "                   for _, data in G.nodes(data=True) if 'address' in data})\n"
        "color_of = {prefix: 'color-' + str(index) for index, prefix in enumerate(prefixes)}\n"
        "for node, data in G.nodes(data=True):\n"
        "    if 'address' in data:\n"
        "        G.nodes[node]['color'] = color_of['.'.join(data['address'].split('.')[:2])]\n"
    )


def _emit_top_k_talkers(intent: Intent) -> str:
    k = intent.param("k", 3)
    return (
        "totals = {node: 0 for node in G.nodes()}\n"
        "for u, _, data in G.edges(data=True):\n"
        "    totals[u] += data.get('bytes', 0)\n"
        "ranked = sorted(G.nodes(), key=lambda n: (-totals[n], G.nodes[n].get('address', str(n))))\n"
        f"result = [G.nodes[n].get('address', str(n)) for n in ranked[:{k}]]\n"
    )


def _emit_peer_count_per_node(intent: Intent) -> str:
    return (
        "result = {}\n"
        "for node in G.nodes():\n"
        "    peers = set(G.successors(node)) | set(G.predecessors(node))\n"
        "    result[G.nodes[node].get('address', str(node))] = len(peers)\n"
    )


def _emit_bytes_per_prefix16(intent: Intent) -> str:
    return (
        "result = {}\n"
        "for u, _, data in G.edges(data=True):\n"
        "    prefix = '.'.join(G.nodes[u]['address'].split('.')[:2])\n"
        "    result[prefix] = result.get(prefix, 0) + data.get('bytes', 0)\n"
    )


def _emit_heavy_edges_above(intent: Intent) -> str:
    threshold = intent.param("threshold", 500_000)
    return (
        "pairs = []\n"
        "for u, v, data in G.edges(data=True):\n"
        f"    if data.get('bytes', 0) > {threshold}:\n"
        "        pairs.append([G.nodes[u].get('address', str(u)),\n"
        "                      G.nodes[v].get('address', str(v))])\n"
        "result = sorted(pairs)\n"
    )


def _emit_remove_light_edges(intent: Intent) -> str:
    threshold = intent.param("threshold", 1000)
    return (
        "to_remove = [(u, v) for u, v, data in G.edges(data=True)\n"
        f"             if data.get('bytes', 0) < {threshold}]\n"
        "G.remove_edges_from(to_remove)\n"
    )


def _emit_avg_bytes_by_source_type(intent: Intent) -> str:
    return (
        "sums = {}\n"
        "counts = {}\n"
        "for u, _, data in G.edges(data=True):\n"
        "    source_type = G.nodes[u].get('type', 'unknown')\n"
        "    sums[source_type] = sums.get(source_type, 0) + data.get('bytes', 0)\n"
        "    counts[source_type] = counts.get(source_type, 0) + 1\n"
        "result = {key: sums[key] / counts[key] for key in sums}\n"
    )


def _emit_reciprocal_pair_count(intent: Intent) -> str:
    return (
        "pairs = set()\n"
        "for u, v in G.edges():\n"
        "    if u != v and G.has_edge(v, u):\n"
        "        pairs.add(frozenset((u, v)))\n"
        "result = len(pairs)\n"
    )


def _emit_cluster_nodes_by_total_bytes(intent: Intent) -> str:
    clusters = intent.param("clusters", 5)
    return (
        "totals = {node: 0 for node in G.nodes()}\n"
        "for u, v, data in G.edges(data=True):\n"
        "    totals[u] += data.get('bytes', 0)\n"
        "    totals[v] += data.get('bytes', 0)\n"
        "result = {}\n"
        "if totals:\n"
        "    low = min(totals.values())\n"
        "    high = max(totals.values())\n"
        "    span = (high - low) or 1.0\n"
        "    for node, total in totals.items():\n"
        f"        index = int((total - low) / span * {clusters})\n"
        f"        result[G.nodes[node].get('address', str(node))] = min({clusters} - 1, index)\n"
    )


def _emit_shortest_path_hops(intent: Intent) -> str:
    source = intent.param("source")
    target = intent.param("target")
    return (
        "import networkx as nx\n"
        "undirected = G.to_undirected()\n"
        "try:\n"
        f"    result = nx.shortest_path_length(undirected, {source!r}, {target!r})\n"
        "except (nx.NetworkXNoPath, nx.NodeNotFound):\n"
        "    result = -1\n"
    )


def _emit_largest_wcc(intent: Intent) -> str:
    return (
        "import networkx as nx\n"
        "components = list(nx.weakly_connected_components(G))\n"
        "result = max((len(c) for c in components), default=0)\n"
    )


def _emit_heavy_hitter_outliers(intent: Intent) -> str:
    return (
        "import math\n"
        "totals = {node: 0 for node in G.nodes()}\n"
        "for u, _, data in G.edges(data=True):\n"
        "    totals[u] += data.get('bytes', 0)\n"
        "values = list(totals.values())\n"
        "result = []\n"
        "if values:\n"
        "    mean = sum(values) / len(values)\n"
        "    std = math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))\n"
        "    result = sorted(G.nodes[node].get('address', str(node))\n"
        "                    for node, total in totals.items() if total > mean + 2 * std)\n"
    )


def _emit_remove_highest_degree_node(intent: Intent) -> str:
    return (
        "ranked = sorted(G.nodes(), key=lambda n: (-(G.in_degree(n) + G.out_degree(n)), str(n)))\n"
        "if ranked:\n"
        "    G.remove_node(ranked[0])\n"
        "result = G.number_of_edges()\n"
    )


def _emit_top_betweenness_node(intent: Intent) -> str:
    return (
        "import networkx as nx\n"
        "centrality = nx.betweenness_centrality(G)\n"
        "result = None\n"
        "if centrality:\n"
        "    best = sorted(centrality.items(), key=lambda item: (-item[1], str(item[0])))[0][0]\n"
        "    result = G.nodes[best].get('address', str(best))\n"
    )


# ---------------------------------------------------------------------------
# MALT intents
# ---------------------------------------------------------------------------
def _emit_list_ports_of_switch(intent: Intent) -> str:
    switch = intent.param("switch")
    return (
        f"switch = {switch!r}\n"
        "result = []\n"
        "if switch in G:\n"
        "    result = sorted(\n"
        "        child for child in G.successors(switch)\n"
        "        if G.edges[switch, child].get('relationship') == 'RK_CONTAINS'\n"
        "        and G.nodes[child].get('type') == 'EK_PORT'\n"
        "    )\n"
    )


def _emit_count_entities_of_type(intent: Intent) -> str:
    entity_type = intent.param("entity_type")
    return (f"result = sum(1 for _, data in G.nodes(data=True) "
            f"if data.get('type') == {entity_type!r})\n")


def _emit_switches_controlled_by(intent: Intent) -> str:
    control_point = intent.param("control_point")
    return (
        f"cp = {control_point!r}\n"
        "result = []\n"
        "if cp in G:\n"
        "    result = sorted(\n"
        "        target for target in G.successors(cp)\n"
        "        if G.edges[cp, target].get('relationship') == 'RK_CONTROLS'\n"
        "    )\n"
    )


def _emit_top2_chassis_by_capacity(intent: Intent) -> str:
    return (
        "chassis = [(node, data.get('capacity', 0)) for node, data in G.nodes(data=True)\n"
        "           if data.get('type') == 'EK_CHASSIS']\n"
        "chassis.sort(key=lambda item: (-item[1], str(item[0])))\n"
        "result = [node for node, _ in chassis[:2]]\n"
    )


def _emit_port_count_per_chassis_in_rack(intent: Intent) -> str:
    rack = intent.param("rack")
    return (
        f"rack = {rack!r}\n"
        "def contained(parent):\n"
        "    return [child for child in G.successors(parent)\n"
        "            if G.edges[parent, child].get('relationship') == 'RK_CONTAINS']\n"
        "result = {}\n"
        "if rack in G:\n"
        "    for chassis in contained(rack):\n"
        "        if G.nodes[chassis].get('type') != 'EK_CHASSIS':\n"
        "            continue\n"
        "        count = 0\n"
        "        stack = contained(chassis)\n"
        "        while stack:\n"
        "            current = stack.pop()\n"
        "            if G.nodes[current].get('type') == 'EK_PORT':\n"
        "                count += 1\n"
        "            stack.extend(contained(current))\n"
        "        result[chassis] = count\n"
    )


def _emit_capacity_per_datacenter(intent: Intent) -> str:
    return (
        "def contained(parent):\n"
        "    return [child for child in G.successors(parent)\n"
        "            if G.edges[parent, child].get('relationship') == 'RK_CONTAINS']\n"
        "result = {}\n"
        "for node, data in G.nodes(data=True):\n"
        "    if data.get('type') != 'EK_DATACENTER':\n"
        "        continue\n"
        "    total = 0\n"
        "    stack = contained(node)\n"
        "    while stack:\n"
        "        current = stack.pop()\n"
        "        if G.nodes[current].get('type') == 'EK_PACKET_SWITCH':\n"
        "            total += G.nodes[current].get('capacity', 0)\n"
        "        stack.extend(contained(current))\n"
        "    result[node] = total\n"
    )


def _emit_remove_switch_and_rebalance(intent: Intent) -> str:
    switch = intent.param("switch")
    return (
        f"switch = {switch!r}\n"
        "if switch in G:\n"
        "    capacity = G.nodes[switch].get('capacity', 0)\n"
        "    chassis = None\n"
        "    for parent in G.predecessors(switch):\n"
        "        if G.edges[parent, switch].get('relationship') == 'RK_CONTAINS':\n"
        "            chassis = parent\n"
        "            break\n"
        "    G.remove_node(switch)\n"
        "    if chassis is not None:\n"
        "        siblings = [child for child in G.successors(chassis)\n"
        "                    if G.edges[chassis, child].get('relationship') == 'RK_CONTAINS'\n"
        "                    and G.nodes[child].get('type') == 'EK_PACKET_SWITCH']\n"
        "        if siblings:\n"
        "            share = capacity / len(siblings)\n"
        "            for sibling in siblings:\n"
        "                G.nodes[sibling]['capacity'] = G.nodes[sibling].get('capacity', 0) + share\n"
    )


def _emit_down_port_fraction_per_datacenter(intent: Intent) -> str:
    return (
        "def contained(parent):\n"
        "    return [child for child in G.successors(parent)\n"
        "            if G.edges[parent, child].get('relationship') == 'RK_CONTAINS']\n"
        "result = {}\n"
        "for node, data in G.nodes(data=True):\n"
        "    if data.get('type') != 'EK_DATACENTER':\n"
        "        continue\n"
        "    ports = []\n"
        "    stack = contained(node)\n"
        "    while stack:\n"
        "        current = stack.pop()\n"
        "        if G.nodes[current].get('type') == 'EK_PORT':\n"
        "            ports.append(current)\n"
        "        stack.extend(contained(current))\n"
        "    if not ports:\n"
        "        result[node] = 0.0\n"
        "        continue\n"
        "    down = sum(1 for port in ports if G.nodes[port].get('status') == 'down')\n"
        "    result[node] = down / len(ports)\n"
    )


def _emit_add_switch_to_least_loaded_chassis(intent: Intent) -> str:
    name = intent.param("name", "new-switch-1")
    capacity = intent.param("capacity", 100)
    return (
        "chassis = [(node, data.get('capacity', 0)) for node, data in G.nodes(data=True)\n"
        "           if data.get('type') == 'EK_CHASSIS']\n"
        "if chassis:\n"
        "    chassis.sort(key=lambda item: (item[1], str(item[0])))\n"
        "    target_chassis = chassis[0][0]\n"
        f"    G.add_node({name!r}, type='EK_PACKET_SWITCH', name={name!r}, capacity={capacity})\n"
        f"    G.add_edge(target_chassis, {name!r}, relationship='RK_CONTAINS')\n"
        f"    G.nodes[target_chassis]['capacity'] = G.nodes[target_chassis].get('capacity', 0) + {capacity}\n"
    )


#: intent name -> template
TEMPLATES: Dict[str, Callable[[Intent], str]] = {
    "count_nodes": _emit_count_nodes,
    "count_edges": _emit_count_edges,
    "total_bytes": _emit_total_bytes,
    "label_nodes_by_prefix": _emit_label_nodes_by_prefix,
    "list_nodes_by_prefix": _emit_list_nodes_by_prefix,
    "max_bytes_edge": _emit_max_bytes_edge,
    "count_nodes_of_type": _emit_count_nodes_of_type,
    "list_isolated_nodes": _emit_list_isolated_nodes,
    "color_by_prefix16": _emit_color_by_prefix16,
    "top_k_talkers": _emit_top_k_talkers,
    "peer_count_per_node": _emit_peer_count_per_node,
    "bytes_per_prefix16": _emit_bytes_per_prefix16,
    "heavy_edges_above": _emit_heavy_edges_above,
    "remove_light_edges": _emit_remove_light_edges,
    "avg_bytes_by_source_type": _emit_avg_bytes_by_source_type,
    "reciprocal_pair_count": _emit_reciprocal_pair_count,
    "cluster_nodes_by_total_bytes": _emit_cluster_nodes_by_total_bytes,
    "shortest_path_hops": _emit_shortest_path_hops,
    "largest_weakly_connected_component": _emit_largest_wcc,
    "heavy_hitter_outliers": _emit_heavy_hitter_outliers,
    "remove_highest_degree_node": _emit_remove_highest_degree_node,
    "top_betweenness_node": _emit_top_betweenness_node,
    "list_ports_of_switch": _emit_list_ports_of_switch,
    "count_entities_of_type": _emit_count_entities_of_type,
    "switches_controlled_by": _emit_switches_controlled_by,
    "top2_chassis_by_capacity": _emit_top2_chassis_by_capacity,
    "port_count_per_chassis_in_rack": _emit_port_count_per_chassis_in_rack,
    "capacity_per_datacenter": _emit_capacity_per_datacenter,
    "remove_switch_and_rebalance": _emit_remove_switch_and_rebalance,
    "down_port_fraction_per_datacenter": _emit_down_port_fraction_per_datacenter,
    "add_switch_to_least_loaded_chassis": _emit_add_switch_to_least_loaded_chassis,
}


def supported_intents() -> List[str]:
    """Intent names this emitter can generate code for."""
    return sorted(TEMPLATES)


def emit(intent: Intent) -> str:
    """Render NetworkX-backend Python code for *intent*."""
    if intent.name not in TEMPLATES:
        raise KeyError(f"networkx emitter does not support intent {intent.name!r}")
    return TEMPLATES[intent.name](intent)
