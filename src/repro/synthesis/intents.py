"""Query intents and the natural-language intent parser.

An :class:`Intent` is the structured meaning of a benchmark query: an intent
name plus parameters.  The benchmark's query corpus carries explicit intents
(so evaluation never depends on parsing accuracy), while :func:`parse_query`
recovers the intent from free-form text for interactive use (the CLI and the
examples) and is tested against the corpus.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.utils.validation import ValidationError


class IntentParseError(ValidationError):
    """Raised when a natural-language query cannot be mapped to an intent."""


@dataclass(frozen=True)
class Intent:
    """The structured meaning of one query."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def create(cls, intent_name: str, /, **params: Any) -> "Intent":
        """Build an intent; ``intent_name`` is positional-only so that intents
        may carry a parameter literally called ``name``."""
        return cls(name=intent_name, params=tuple(sorted(params.items())))

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({rendered})"


#: every intent the synthesis engine knows about, grouped by application
KNOWN_INTENTS: Dict[str, List[str]] = {
    "traffic_analysis": [
        "count_nodes",
        "count_edges",
        "total_bytes",
        "label_nodes_by_prefix",
        "list_nodes_by_prefix",
        "max_bytes_edge",
        "count_nodes_of_type",
        "list_isolated_nodes",
        "color_by_prefix16",
        "top_k_talkers",
        "peer_count_per_node",
        "bytes_per_prefix16",
        "heavy_edges_above",
        "remove_light_edges",
        "avg_bytes_by_source_type",
        "reciprocal_pair_count",
        "cluster_nodes_by_total_bytes",
        "shortest_path_hops",
        "largest_weakly_connected_component",
        "heavy_hitter_outliers",
        "remove_highest_degree_node",
        "top_betweenness_node",
        "merge_nodes_by_prefix24",
        "redistribute_busiest_node_bytes",
    ],
    "malt": [
        "list_ports_of_switch",
        "count_entities_of_type",
        "switches_controlled_by",
        "top2_chassis_by_capacity",
        "port_count_per_chassis_in_rack",
        "capacity_per_datacenter",
        "remove_switch_and_rebalance",
        "down_port_fraction_per_datacenter",
        "add_switch_to_least_loaded_chassis",
    ],
}


#: temporal intent signatures: intent name -> accepted parameter names.
#: Temporal intents are evaluated over a replayed scenario timeline rather
#: than a single graph; ``at``/``since``/``until``/``start``/``end`` are
#: snapshot-time anchors (see ``repro.synthesis.reference``
#: ``TEMPORAL_TIME_PARAMS``).  The timeline-aware emitters and the temporal
#: fault injector both validate against these signatures.
TEMPORAL_INTENT_SIGNATURES: Dict[str, Tuple[str, ...]] = {
    # single-snapshot lookups
    "node_count_at": ("at",),
    "edge_count_at": ("at",),
    "isolated_nodes_at": ("at",),
    "capacity_drop_at": ("at", "attribute"),
    "degraded_links_at": ("at", "attribute"),
    # whole-timeline aggregations
    "snapshot_count": (),
    "peak_traffic_time": ("key",),
    # windowed deltas
    "failed_links_since": ("since", "until", "start", "end"),
    "restored_links_since": ("since", "until", "start", "end"),
    "churned_nodes_between": ("since", "until", "start", "end"),
    "traffic_change_between": ("since", "until", "start", "end", "key"),
    # correlated dynamics (SRLGs, maintenance drains, regional gravity)
    "failed_srlgs_at": ("at",),
    "srlg_links_down_at": ("at", "group"),
    "drained_links_between": ("since", "until", "start", "end"),
    "drained_nodes_between": ("since", "until", "start", "end"),
    "region_traffic_between": ("since", "until", "start", "end", "key"),
    "top_region_by_traffic_growth": ("since", "until", "start", "end", "key"),
    # MALT lifecycle over timelines
    "entity_count_at": ("at", "entity_type"),
    "entity_capacity_at": ("at", "entity_type"),
    "orphaned_ports_at": ("at",),
}


def temporal_intent_names() -> List[str]:
    """Every temporal intent name, sorted."""
    return sorted(TEMPORAL_INTENT_SIGNATURES)


def temporal_window(intent: Intent) -> Tuple[Any, Any]:
    """The (start, end) values an interval intent references, or ``None``.

    ``since``/``start`` anchor the window start and ``until``/``end`` the
    window end; ``since``/``until`` take precedence.  This is the single
    source of that precedence — the temporal reference semantics and both
    timeline-aware emitters all resolve windows through it, so they can
    never disagree about which snapshot pair a window compares.
    """
    start = intent.param("since", intent.param("start"))
    end = intent.param("until", intent.param("end"))
    return start, end


def _number(text: str) -> Any:
    value = float(text)
    return int(value) if value == int(value) else value


# Each rule: (regex, builder).  Rules are tried in order; the first match wins.
_RULES: List[Tuple[re.Pattern, Callable[[re.Match], Intent]]] = [
    # -- traffic analysis: easy ------------------------------------------
    (re.compile(r"how many (nodes|endpoints)", re.I),
     lambda m: Intent.create("count_nodes")),
    (re.compile(r"how many (edges|communication pairs|links)", re.I),
     lambda m: Intent.create("count_edges")),
    (re.compile(r"total (number of )?bytes.*(all edges|whole graph|across)", re.I),
     lambda m: Intent.create("total_bytes")),
    (re.compile(r"add a label (\w+):(\w+) to nodes with address prefix ([\d.]+)", re.I),
     lambda m: Intent.create("label_nodes_by_prefix", key=m.group(1), value=m.group(2),
                             prefix=m.group(3).rstrip("."))),
    (re.compile(r"list the addresses of (all )?nodes with address prefix ([\d.]+)", re.I),
     lambda m: Intent.create("list_nodes_by_prefix", prefix=m.group(2).rstrip("."))),
    (re.compile(r"which edge carries the most bytes", re.I),
     lambda m: Intent.create("max_bytes_edge")),
    (re.compile(r"how many (\w+) nodes", re.I),
     lambda m: Intent.create("count_nodes_of_type", type_name=m.group(1).lower())),
    (re.compile(r"(isolated|no incoming or outgoing)", re.I),
     lambda m: Intent.create("list_isolated_nodes")),
    # -- traffic analysis: medium ----------------------------------------
    (re.compile(r"assign a (unique )?color.*?/16", re.I),
     lambda m: Intent.create("color_by_prefix16")),
    (re.compile(r"top (\d+) nodes by total outgoing bytes", re.I),
     lambda m: Intent.create("top_k_talkers", k=int(m.group(1)))),
    (re.compile(r"number of distinct peers", re.I),
     lambda m: Intent.create("peer_count_per_node")),
    (re.compile(r"total bytes sent (by|per).*?/16", re.I),
     lambda m: Intent.create("bytes_per_prefix16")),
    (re.compile(r"edges carrying more than (\d+) bytes", re.I),
     lambda m: Intent.create("heavy_edges_above", threshold=int(m.group(1)))),
    (re.compile(r"remove all edges with fewer than (\d+) bytes", re.I),
     lambda m: Intent.create("remove_light_edges", threshold=int(m.group(1)))),
    (re.compile(r"average bytes per edge grouped by", re.I),
     lambda m: Intent.create("avg_bytes_by_source_type")),
    (re.compile(r"communicate in both directions", re.I),
     lambda m: Intent.create("reciprocal_pair_count")),
    # -- traffic analysis: hard ------------------------------------------
    (re.compile(r"cluster them into (\d+) groups", re.I),
     lambda m: Intent.create("cluster_nodes_by_total_bytes", clusters=int(m.group(1)))),
    (re.compile(r"number of hops.*between node (\w+) and node (\w+)", re.I),
     lambda m: Intent.create("shortest_path_hops", source=m.group(1), target=m.group(2))),
    (re.compile(r"largest (weakly )?connected component", re.I),
     lambda m: Intent.create("largest_weakly_connected_component")),
    (re.compile(r"exceed the mean by more than two standard deviations", re.I),
     lambda m: Intent.create("heavy_hitter_outliers")),
    (re.compile(r"remove the node with the highest (total )?degree", re.I),
     lambda m: Intent.create("remove_highest_degree_node")),
    (re.compile(r"highest betweenness centrality", re.I),
     lambda m: Intent.create("top_betweenness_node")),
    (re.compile(r"merge all nodes sharing the same /24 prefix", re.I),
     lambda m: Intent.create("merge_nodes_by_prefix24")),
    (re.compile(r"redistribute the total outgoing bytes of the busiest node", re.I),
     lambda m: Intent.create("redistribute_busiest_node_bytes")),
    # -- MALT --------------------------------------------------------------
    (re.compile(r"list all ports that are contained by packet switch ([\w.\-]+)", re.I),
     lambda m: Intent.create("list_ports_of_switch", switch=m.group(1).rstrip("."))),
    (re.compile(r"how many packet switches", re.I),
     lambda m: Intent.create("count_entities_of_type", entity_type="EK_PACKET_SWITCH")),
    (re.compile(r"how many (chassis|ports|racks|pods|datacenters)", re.I),
     lambda m: Intent.create("count_entities_of_type",
                             entity_type="EK_" + m.group(1).upper().rstrip("S")
                             if m.group(1).lower() != "chassis" else "EK_CHASSIS")),
    (re.compile(r"packet switches controlled by control point ([\w.\-]+)", re.I),
     lambda m: Intent.create("switches_controlled_by", control_point=m.group(1).rstrip("."))),
    (re.compile(r"first and the second largest chassis by capacity", re.I),
     lambda m: Intent.create("top2_chassis_by_capacity")),
    (re.compile(r"number of ports.*each chassis of rack ([\w.\-]+)", re.I),
     lambda m: Intent.create("port_count_per_chassis_in_rack", rack=m.group(1).rstrip("."))),
    (re.compile(r"total packet switch capacity in each datacenter", re.I),
     lambda m: Intent.create("capacity_per_datacenter")),
    (re.compile(r"remove packet switch ([\w.\-]+?) from its chassis", re.I),
     lambda m: Intent.create("remove_switch_and_rebalance", switch=m.group(1).rstrip("."))),
    (re.compile(r"fraction of ports that are down", re.I),
     lambda m: Intent.create("down_port_fraction_per_datacenter")),
    (re.compile(r"add a new packet switch named '([\w.\-]+)' with capacity (\d+)", re.I),
     lambda m: Intent.create("add_switch_to_least_loaded_chassis",
                             name=m.group(1), capacity=_number(m.group(2)))),
]


def parse_query(query: str) -> Intent:
    """Map a natural-language query to its :class:`Intent`.

    Raises :class:`IntentParseError` when no rule matches; the simulated LLM
    treats that the same way a hosted model treats a query it does not
    understand (it produces faulty code).
    """
    for pattern, builder in _RULES:
        match = pattern.search(query)
        if match:
            return builder(match)
    raise IntentParseError(f"could not derive an intent from query: {query!r}")


def all_intent_names() -> List[str]:
    """Every known intent name across both applications."""
    names: List[str] = []
    for group in KNOWN_INTENTS.values():
        names.extend(group)
    return names
