"""Runtime of the timeline-aware synthesis backends.

The paper's thesis is that LLM-*generated code* over a network representation
beats answering directly from serialized data.  This module is the temporal
half of that pipeline: it turns a **serialized**
:class:`~repro.scenarios.engine.ScenarioTimeline` (the dict produced by
:func:`repro.scenarios.engine.timeline_to_dict`) into the sandbox namespace a
generated temporal program consumes, and executes the program under the same
:class:`~repro.sandbox.executor.ExecutionSandbox` policy as the static
benchmark code.

The namespace contract (documented in DESIGN.md "Timeline-aware synthesis"):

``snapshots``
    An ordered list of dicts, one per scenario snapshot, each carrying

    * ``time`` — the snapshot timestamp (float),
    * ``digest`` — the snapshot's content digest,
    * ``directed`` — whether the underlying network is directed,
    * ``attributes`` — the graph-level attributes (SRLG declarations,
      scenario metadata),
    * backend-specific state: a NetworkX ``graph`` for the ``networkx``
      backend, or ``nodes_df``/``edges_df`` dataframes for ``frames``.

    Graphs are exposed as ``networkx.DiGraph`` in the timeline's *stored*
    edge orientation regardless of directedness — the same orientation the
    serialized snapshots and the reference diff machinery use — and the
    ``directed`` flag tells generated programs whether link-presence checks
    must be treated symmetrically.

``deltas``
    A list aligned with ``snapshots``: the structural diff from the previous
    snapshot (``missing_nodes`` / ``extra_nodes`` / ``missing_edges`` /
    ``extra_edges`` / changed-attribute keys), ``None`` for the initial
    snapshot.

Programs leave their answer in ``result``, exactly like static benchmark
programs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.sandbox import ExecutionOutcome, ExecutionSandbox
from repro.synthesis.engine import TEMPORAL_CODE_BACKENDS
from repro.utils.validation import require_in


def parse_timeline_payload(timeline_payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Deserialize a timeline payload into per-snapshot parse results.

    Each entry carries the snapshot's metadata, its rebuilt
    :class:`~repro.graph.model.PropertyGraph` and the serialized delta.
    Parsing is the expensive half of namespace construction and is a pure
    function of the payload, so sweep workers memoize this result per
    scenario (treating the graphs as immutable) and pay only the per-cell
    backend conversion.
    """
    from repro.graph.serialization import graph_from_dict
    from repro.scenarios.engine import require_timeline_format

    require_timeline_format(timeline_payload)
    parsed = []
    for entry in timeline_payload["snapshots"]:
        graph = graph_from_dict(entry["graph"])
        parsed.append({
            "time": float(entry["time"]),
            "digest": entry["digest"],
            "graph": graph,
            "delta": entry.get("delta"),
        })
    return parsed


def timeline_namespace(timeline: Union[Dict[str, Any], List[Dict[str, Any]]],
                       backend: str) -> Dict[str, Any]:
    """Build the sandbox namespace of one serialized timeline for *backend*.

    *timeline* is either the raw payload dict from
    :func:`repro.scenarios.engine.timeline_to_dict` or the pre-parsed list
    from :func:`parse_timeline_payload`.  Isolation contract: the namespace
    containers, the graph/frame objects, every per-entity attribute dict,
    and the graph-level ``attributes`` tree are built fresh per call, so
    rebinding or adding/removing entries inside a program never leaks into
    the memoized parse result.  Values nested *inside* node/edge attributes
    are still shared with it — the same treat-as-immutable contract the
    static benchmark's memoized applications rely on, which every temporal
    intent (all read-only analyses) honours by construction.

    Graphs are exposed as ``networkx.DiGraph`` in the timeline's *stored*
    edge orientation regardless of directedness — the same orientation the
    serialized snapshots and the reference diff machinery use — and the
    ``directed`` flag tells generated programs whether link-presence checks
    must be treated symmetrically.
    """
    import copy

    from repro.graph.convert import to_frames, to_networkx

    require_in(backend, TEMPORAL_CODE_BACKENDS, "backend")
    parsed = (timeline if isinstance(timeline, list)
              else parse_timeline_payload(timeline))
    snapshots = []
    deltas = []
    for entry in parsed:
        graph = entry["graph"]
        snapshot: Dict[str, Any] = {
            "time": entry["time"],
            "digest": entry["digest"],
            "directed": graph.directed,
            # deep copy: the attribute tree nests mutable members (SRLG
            # link lists) that a program may touch; it is small relative
            # to the graph conversion below
            "attributes": copy.deepcopy(graph.graph_attributes),
        }
        if backend == "networkx":
            snapshot["graph"] = to_networkx(graph, force_directed=True)
        else:
            nodes_df, edges_df = to_frames(graph)
            snapshot["nodes_df"] = nodes_df
            snapshot["edges_df"] = edges_df
        snapshots.append(snapshot)
        deltas.append(copy.deepcopy(entry["delta"]))
    return {"snapshots": snapshots, "deltas": deltas}


def run_temporal_program(code: str,
                         timeline: Union[Dict[str, Any], List[Dict[str, Any]]],
                         backend: str,
                         sandbox: Optional[ExecutionSandbox] = None,
                         ) -> ExecutionOutcome:
    """Execute a generated temporal program against a serialized timeline.

    *timeline* accepts the same two forms as :func:`timeline_namespace`.
    Failures (syntax errors, policy violations, runtime exceptions, time
    budget) are captured in the returned
    :class:`~repro.sandbox.executor.ExecutionOutcome` — never raised — so a
    faulty generated program is a recorded fault, not a sweep crash.
    """
    sandbox = sandbox or ExecutionSandbox()
    return sandbox.execute(code, timeline_namespace(timeline, backend))
