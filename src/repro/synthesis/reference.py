"""Backend-independent reference semantics for every supported intent.

Each reference function computes the *correct* outcome of a query directly on
the :class:`~repro.graph.model.PropertyGraph`: a result value, an updated
graph, or both.  The benchmark uses these as golden answers ("golden answer
selector" in the paper's Figure 3), and the strawman path uses them to answer
directly from the serialized data.

The functions never mutate the input graph; manipulation intents return a
mutated *copy*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.graph import PropertyGraph
from repro.synthesis.intents import Intent
from repro.utils.validation import ValidationError

# Entity/relationship kind strings of the MALT model.  They are duplicated
# here (rather than imported from repro.malt.schema) to keep the synthesis
# package free of application-package imports — the application packages
# depend on the core framework, which depends on the LLM simulator, which
# depends on this module.
_EK_CHASSIS = "EK_CHASSIS"
_EK_PACKET_SWITCH = "EK_PACKET_SWITCH"
_EK_PORT = "EK_PORT"
_EK_DATACENTER = "EK_DATACENTER"
_RK_CONTAINS = "RK_CONTAINS"
_RK_CONTROLS = "RK_CONTROLS"


def prefix16(address: str) -> str:
    """The /16 prefix of a dotted-quad address ("10.24.3.7" -> "10.24")."""
    return ".".join(address.split(".")[:2])


def prefix24(address: str) -> str:
    """The /24 prefix of a dotted-quad address ("10.24.3.7" -> "10.24.3")."""
    return ".".join(address.split(".")[:3])


class UnknownIntentError(ValidationError):
    """Raised when no reference implementation exists for an intent."""


@dataclass
class ReferenceOutcome:
    """The golden outcome of one query."""

    kind: str                      # "value", "graph", or "both"
    value: Any = None
    graph: Optional[PropertyGraph] = None


_HANDLERS: Dict[str, Callable[[PropertyGraph, Intent], ReferenceOutcome]] = {}


def _register(name: str):
    def decorator(func: Callable[[PropertyGraph, Intent], ReferenceOutcome]):
        _HANDLERS[name] = func
        return func
    return decorator


def evaluate_reference(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    """Compute the golden outcome of *intent* on *graph*."""
    if intent.name not in _HANDLERS:
        raise UnknownIntentError(f"no reference implementation for intent {intent.name!r}")
    return _HANDLERS[intent.name](graph, intent)


def supported_reference_intents() -> List[str]:
    """Names of all intents with a reference implementation."""
    return sorted(_HANDLERS)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------
def _address(graph: PropertyGraph, node_id: Any) -> str:
    return graph.node_attributes(node_id).get("address", str(node_id))


def _outgoing_bytes(graph: PropertyGraph, node_id: Any) -> float:
    return graph.out_degree(node_id, weight="bytes")


def _total_bytes_per_node(graph: PropertyGraph) -> Dict[Any, float]:
    return {node: graph.degree(node, weight="bytes") for node in graph.nodes()}


def _contains_children(graph: PropertyGraph, parent: Any) -> List[Any]:
    children = []
    for child in graph.successors(parent):
        if graph.edge_attributes(parent, child).get("relationship") == _RK_CONTAINS:
            children.append(child)
    return children


def _descendants_of_type(graph: PropertyGraph, root: Any, entity_type: str) -> List[Any]:
    found = []
    stack = list(_contains_children(graph, root))
    while stack:
        current = stack.pop()
        if graph.node_attributes(current).get("type") == entity_type:
            found.append(current)
        stack.extend(_contains_children(graph, current))
    return found


# ---------------------------------------------------------------------------
# traffic analysis — easy
# ---------------------------------------------------------------------------
@_register("count_nodes")
def _count_nodes(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    return ReferenceOutcome(kind="value", value=graph.node_count)


@_register("count_edges")
def _count_edges(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    return ReferenceOutcome(kind="value", value=graph.edge_count)


@_register("total_bytes")
def _total_bytes(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    return ReferenceOutcome(kind="value", value=graph.total_edge_weight("bytes"))


@_register("label_nodes_by_prefix")
def _label_nodes_by_prefix(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    prefix = intent.param("prefix")
    key = intent.param("key", "app")
    value = intent.param("value", "production")
    updated = graph.copy()
    for node_id, attrs in updated.nodes(data=True):
        address = attrs.get("address", "")
        if address.startswith(prefix + ".") or address == prefix:
            attrs[key] = value
    return ReferenceOutcome(kind="graph", graph=updated)


@_register("list_nodes_by_prefix")
def _list_nodes_by_prefix(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    prefix = intent.param("prefix")
    addresses = sorted(
        attrs["address"] for _, attrs in graph.nodes(data=True)
        if attrs.get("address", "").startswith(prefix + ".") or attrs.get("address") == prefix)
    return ReferenceOutcome(kind="value", value=addresses)


@_register("max_bytes_edge")
def _max_bytes_edge(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    best = None
    for source, target, attrs in graph.edges(data=True):
        key = (attrs.get("bytes", 0), _address(graph, source), _address(graph, target))
        if best is None or key[0] > best[0]:
            best = key
    if best is None:
        return ReferenceOutcome(kind="value", value=[])
    return ReferenceOutcome(kind="value", value=[best[1], best[2]])


@_register("count_nodes_of_type")
def _count_nodes_of_type(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    type_name = intent.param("type_name")
    count = sum(1 for _, attrs in graph.nodes(data=True) if attrs.get("type") == type_name)
    return ReferenceOutcome(kind="value", value=count)


@_register("list_isolated_nodes")
def _list_isolated_nodes(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    isolated = sorted(_address(graph, node) for node in graph.nodes()
                      if graph.degree(node) == 0)
    return ReferenceOutcome(kind="value", value=isolated)


# ---------------------------------------------------------------------------
# traffic analysis — medium
# ---------------------------------------------------------------------------
@_register("color_by_prefix16")
def _color_by_prefix16(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    updated = graph.copy()
    prefixes = sorted({prefix16(attrs["address"])
                       for _, attrs in updated.nodes(data=True) if "address" in attrs})
    color_of = {prefix: f"color-{index}" for index, prefix in enumerate(prefixes)}
    for _, attrs in updated.nodes(data=True):
        if "address" in attrs:
            attrs["color"] = color_of[prefix16(attrs["address"])]
    return ReferenceOutcome(kind="graph", graph=updated)


@_register("top_k_talkers")
def _top_k_talkers(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    k = intent.param("k", 3)
    scored = [(-_outgoing_bytes(graph, node), _address(graph, node)) for node in graph.nodes()]
    scored.sort()
    return ReferenceOutcome(kind="value", value=[address for _, address in scored[:k]])


@_register("peer_count_per_node")
def _peer_count_per_node(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    counts = {_address(graph, node): len(graph.neighbors(node)) for node in graph.nodes()}
    return ReferenceOutcome(kind="value", value=counts)


@_register("bytes_per_prefix16")
def _bytes_per_prefix16(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    totals: Dict[str, float] = {}
    for source, _, attrs in graph.edges(data=True):
        prefix = prefix16(_address(graph, source))
        totals[prefix] = totals.get(prefix, 0) + attrs.get("bytes", 0)
    return ReferenceOutcome(kind="value", value=totals)


@_register("heavy_edges_above")
def _heavy_edges_above(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    threshold = intent.param("threshold", 500_000)
    pairs = sorted([_address(graph, source), _address(graph, target)]
                   for source, target, attrs in graph.edges(data=True)
                   if attrs.get("bytes", 0) > threshold)
    return ReferenceOutcome(kind="value", value=pairs)


@_register("remove_light_edges")
def _remove_light_edges(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    threshold = intent.param("threshold", 1000)
    updated = graph.copy()
    to_remove = [(source, target) for source, target, attrs in updated.edges(data=True)
                 if attrs.get("bytes", 0) < threshold]
    for source, target in to_remove:
        updated.remove_edge(source, target)
    return ReferenceOutcome(kind="graph", graph=updated)


@_register("avg_bytes_by_source_type")
def _avg_bytes_by_source_type(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for source, _, attrs in graph.edges(data=True):
        source_type = graph.node_attributes(source).get("type", "unknown")
        sums[source_type] = sums.get(source_type, 0) + attrs.get("bytes", 0)
        counts[source_type] = counts.get(source_type, 0) + 1
    averages = {key: sums[key] / counts[key] for key in sums}
    return ReferenceOutcome(kind="value", value=averages)


@_register("reciprocal_pair_count")
def _reciprocal_pair_count(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    count = 0
    for source, target in graph.edges():
        if source < target and graph.has_edge(target, source):
            count += 1
    # count unordered pairs where both directions exist; the comparison above
    # only works for orderable ids, so fall back to an explicit set otherwise
    pairs = set()
    for source, target in graph.edges():
        if graph.has_edge(target, source) and source != target:
            pairs.add(frozenset((source, target)))
    return ReferenceOutcome(kind="value", value=len(pairs))


# ---------------------------------------------------------------------------
# traffic analysis — hard
# ---------------------------------------------------------------------------
@_register("cluster_nodes_by_total_bytes")
def _cluster_nodes_by_total_bytes(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    clusters = intent.param("clusters", 5)
    totals = _total_bytes_per_node(graph)
    if not totals:
        return ReferenceOutcome(kind="value", value={})
    low = min(totals.values())
    high = max(totals.values())
    span = (high - low) or 1.0
    groups = {}
    for node, total in totals.items():
        index = int((total - low) / span * clusters)
        groups[_address(graph, node)] = min(clusters - 1, index)
    return ReferenceOutcome(kind="value", value=groups)


@_register("shortest_path_hops")
def _shortest_path_hops(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    source = intent.param("source")
    target = intent.param("target")
    if not graph.has_node(source) or not graph.has_node(target):
        return ReferenceOutcome(kind="value", value=-1)
    # undirected breadth-first search over the communication graph
    frontier = [source]
    distances = {source: 0}
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in distances:
                    distances[neighbor] = distances[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return ReferenceOutcome(kind="value", value=distances.get(target, -1))


@_register("largest_weakly_connected_component")
def _largest_wcc(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    seen = set()
    best = 0
    for start in graph.nodes():
        if start in seen:
            continue
        component = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in graph.neighbors(node):
                if neighbor not in component:
                    component.add(neighbor)
                    stack.append(neighbor)
        seen.update(component)
        best = max(best, len(component))
    return ReferenceOutcome(kind="value", value=best)


@_register("heavy_hitter_outliers")
def _heavy_hitter_outliers(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    totals = {node: _outgoing_bytes(graph, node) for node in graph.nodes()}
    values = list(totals.values())
    if not values:
        return ReferenceOutcome(kind="value", value=[])
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    threshold = mean + 2 * math.sqrt(variance)
    outliers = sorted(_address(graph, node) for node, total in totals.items()
                      if total > threshold)
    return ReferenceOutcome(kind="value", value=outliers)


@_register("remove_highest_degree_node")
def _remove_highest_degree_node(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    updated = graph.copy()
    if updated.node_count == 0:
        return ReferenceOutcome(kind="both", value=0, graph=updated)
    ranked = sorted(updated.nodes(), key=lambda node: (-updated.degree(node), str(node)))
    updated.remove_node(ranked[0])
    return ReferenceOutcome(kind="both", value=updated.edge_count, graph=updated)


@_register("top_betweenness_node")
def _top_betweenness_node(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    import networkx as nx

    from repro.graph.convert import to_networkx

    nx_graph = to_networkx(graph)
    if nx_graph.number_of_nodes() == 0:
        return ReferenceOutcome(kind="value", value=None)
    centrality = nx.betweenness_centrality(nx_graph)
    best = sorted(centrality.items(), key=lambda item: (-item[1], str(item[0])))[0][0]
    return ReferenceOutcome(kind="value", value=_address(graph, best))


@_register("merge_nodes_by_prefix24")
def _merge_nodes_by_prefix24(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    updated = PropertyGraph(name=graph.name, directed=True)
    group_of = {}
    for node, attrs in graph.nodes(data=True):
        group = prefix24(attrs["address"]) if "address" in attrs else str(node)
        group_of[node] = group
        if not updated.has_node(group):
            updated.add_node(group, address=group, type="aggregate")
    for source, target, attrs in graph.edges(data=True):
        group_source = group_of[source]
        group_target = group_of[target]
        if group_source == group_target:
            continue
        if updated.has_edge(group_source, group_target):
            existing = updated.edge_attributes(group_source, group_target)
            for key in ("bytes", "connections", "packets"):
                existing[key] = existing.get(key, 0) + attrs.get(key, 0)
        else:
            updated.add_edge(group_source, group_target,
                             bytes=attrs.get("bytes", 0),
                             connections=attrs.get("connections", 0),
                             packets=attrs.get("packets", 0))
    return ReferenceOutcome(kind="graph", graph=updated)


@_register("redistribute_busiest_node_bytes")
def _redistribute_busiest_node_bytes(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    updated = graph.copy()
    busiest = None
    busiest_total = -1.0
    for node in updated.nodes():
        total = updated.out_degree(node, weight="bytes")
        if total > busiest_total or (total == busiest_total and str(node) < str(busiest)):
            busiest, busiest_total = node, total
    if busiest is None:
        return ReferenceOutcome(kind="graph", graph=updated)
    successors = updated.successors(busiest)
    if successors:
        share = busiest_total / len(successors)
        for target in successors:
            updated.edge_attributes(busiest, target)["bytes"] = share
    return ReferenceOutcome(kind="graph", graph=updated)


# ---------------------------------------------------------------------------
# MALT — easy
# ---------------------------------------------------------------------------
@_register("list_ports_of_switch")
def _list_ports_of_switch(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    switch = intent.param("switch")
    if not graph.has_node(switch):
        return ReferenceOutcome(kind="value", value=[])
    ports = sorted(child for child in _contains_children(graph, switch)
                   if graph.node_attributes(child).get("type") == _EK_PORT)
    return ReferenceOutcome(kind="value", value=ports)


@_register("count_entities_of_type")
def _count_entities_of_type(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    entity_type = intent.param("entity_type")
    count = sum(1 for _, attrs in graph.nodes(data=True) if attrs.get("type") == entity_type)
    return ReferenceOutcome(kind="value", value=count)


@_register("switches_controlled_by")
def _switches_controlled_by(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    control_point = intent.param("control_point")
    if not graph.has_node(control_point):
        return ReferenceOutcome(kind="value", value=[])
    switches = sorted(
        target for target in graph.successors(control_point)
        if graph.edge_attributes(control_point, target).get("relationship")
        == _RK_CONTROLS)
    return ReferenceOutcome(kind="value", value=switches)


# ---------------------------------------------------------------------------
# MALT — medium
# ---------------------------------------------------------------------------
@_register("top2_chassis_by_capacity")
def _top2_chassis_by_capacity(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    chassis = [(node, attrs.get("capacity", 0))
               for node, attrs in graph.nodes(data=True)
               if attrs.get("type") == _EK_CHASSIS]
    chassis.sort(key=lambda item: (-item[1], str(item[0])))
    return ReferenceOutcome(kind="value", value=[node for node, _ in chassis[:2]])


@_register("port_count_per_chassis_in_rack")
def _port_count_per_chassis_in_rack(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    rack = intent.param("rack")
    result: Dict[str, int] = {}
    if not graph.has_node(rack):
        return ReferenceOutcome(kind="value", value=result)
    for chassis in _contains_children(graph, rack):
        if graph.node_attributes(chassis).get("type") != _EK_CHASSIS:
            continue
        ports = _descendants_of_type(graph, chassis, _EK_PORT)
        result[chassis] = len(ports)
    return ReferenceOutcome(kind="value", value=result)


@_register("capacity_per_datacenter")
def _capacity_per_datacenter(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    result: Dict[str, float] = {}
    for node, attrs in graph.nodes(data=True):
        if attrs.get("type") != _EK_DATACENTER:
            continue
        switches = _descendants_of_type(graph, node, _EK_PACKET_SWITCH)
        result[node] = sum(graph.node_attributes(s).get("capacity", 0) for s in switches)
    return ReferenceOutcome(kind="value", value=result)


# ---------------------------------------------------------------------------
# MALT — hard
# ---------------------------------------------------------------------------
@_register("remove_switch_and_rebalance")
def _remove_switch_and_rebalance(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    switch = intent.param("switch")
    updated = graph.copy()
    if not updated.has_node(switch):
        return ReferenceOutcome(kind="graph", graph=updated)
    capacity = updated.node_attributes(switch).get("capacity", 0)
    chassis = None
    for parent in updated.predecessors(switch):
        if updated.edge_attributes(parent, switch).get("relationship") == _RK_CONTAINS:
            chassis = parent
            break
    updated.remove_node(switch)
    if chassis is not None:
        siblings = [child for child in _contains_children(updated, chassis)
                    if updated.node_attributes(child).get("type") == _EK_PACKET_SWITCH]
        if siblings:
            share = capacity / len(siblings)
            for sibling in siblings:
                attrs = updated.node_attributes(sibling)
                attrs["capacity"] = attrs.get("capacity", 0) + share
    return ReferenceOutcome(kind="graph", graph=updated)


@_register("down_port_fraction_per_datacenter")
def _down_port_fraction_per_datacenter(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    result: Dict[str, float] = {}
    for node, attrs in graph.nodes(data=True):
        if attrs.get("type") != _EK_DATACENTER:
            continue
        ports = _descendants_of_type(graph, node, _EK_PORT)
        if not ports:
            result[node] = 0.0
            continue
        down = sum(1 for port in ports
                   if graph.node_attributes(port).get("status") == "down")
        result[node] = down / len(ports)
    return ReferenceOutcome(kind="value", value=result)


@_register("add_switch_to_least_loaded_chassis")
def _add_switch_to_least_loaded_chassis(graph: PropertyGraph, intent: Intent) -> ReferenceOutcome:
    name = intent.param("name", "new-switch-1")
    capacity = intent.param("capacity", 100)
    updated = graph.copy()
    chassis = [(node, attrs.get("capacity", 0))
               for node, attrs in updated.nodes(data=True)
               if attrs.get("type") == _EK_CHASSIS]
    if not chassis:
        return ReferenceOutcome(kind="graph", graph=updated)
    chassis.sort(key=lambda item: (item[1], str(item[0])))
    target_chassis = chassis[0][0]
    updated.add_node(name, type=_EK_PACKET_SWITCH, name=name, capacity=capacity)
    updated.add_edge(target_chassis, name, relationship=_RK_CONTAINS)
    chassis_attrs = updated.node_attributes(target_chassis)
    chassis_attrs["capacity"] = chassis_attrs.get("capacity", 0) + capacity
    return ReferenceOutcome(kind="graph", graph=updated)


# ---------------------------------------------------------------------------
# temporal intents — evaluated over a scenario timeline, not a single graph
# ---------------------------------------------------------------------------
# A temporal reference receives the full replayed ScenarioTimeline and anchors
# its computation at the snapshots named by the intent's time parameters
# (``at``/``since``/``until``/``start``/``end``).  Deltas between anchored
# snapshots are computed with the same :func:`repro.graph.diff.diff_graphs`
# machinery the results evaluator uses, so a temporal golden and a graph-state
# verdict can never disagree about what "changed" means.

_TEMPORAL_HANDLERS: Dict[str, Callable[[Any, Intent], ReferenceOutcome]] = {}

#: intent parameter names interpreted as snapshot timestamps
TEMPORAL_TIME_PARAMS = ("at", "since", "until", "start", "end")


def _register_temporal(name: str):
    def decorator(func: Callable[[Any, Intent], ReferenceOutcome]):
        _TEMPORAL_HANDLERS[name] = func
        return func
    return decorator


def evaluate_temporal_reference(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """Compute the golden outcome of a temporal *intent* on *timeline*."""
    if intent.name not in _TEMPORAL_HANDLERS:
        raise UnknownIntentError(
            f"no temporal reference implementation for intent {intent.name!r}")
    return _TEMPORAL_HANDLERS[intent.name](timeline, intent)


def supported_temporal_intents() -> List[str]:
    """Names of all temporal intents with a reference implementation."""
    return sorted(_TEMPORAL_HANDLERS)


def _edge_pairs(edges) -> List[List[str]]:
    return sorted([str(source), str(target)] for source, target in edges)


def _window_bounds(timeline: Any, intent: Intent) -> Tuple[float, float]:
    """The (start, end) times an interval intent references.

    Parameter precedence lives in :func:`repro.synthesis.intents.
    temporal_window`; unbound ends default to the first/last snapshot time.
    """
    from repro.synthesis.intents import temporal_window

    start, end = temporal_window(intent)
    return (timeline.snapshots[0].time if start is None else float(start),
            timeline.snapshots[-1].time if end is None else float(end))


def _window(timeline: Any, intent: Intent) -> Tuple[PropertyGraph, PropertyGraph]:
    """The (earlier, later) snapshot graphs an interval intent compares."""
    start, end = _window_bounds(timeline, intent)
    return timeline.graph_at(start), timeline.graph_at(end)


def _total_edge_attr(graph: PropertyGraph, key: str) -> float:
    return sum(attrs.get(key, 0) for _, _, attrs in graph.edges(data=True))


@_register_temporal("failed_links_since")
def _failed_links_since(timeline: Any, intent: Intent) -> ReferenceOutcome:
    from repro.graph.diff import diff_graphs

    earlier, later = _window(timeline, intent)
    return ReferenceOutcome(
        kind="value", value=_edge_pairs(diff_graphs(earlier, later).missing_edges))


@_register_temporal("restored_links_since")
def _restored_links_since(timeline: Any, intent: Intent) -> ReferenceOutcome:
    from repro.graph.diff import diff_graphs

    earlier, later = _window(timeline, intent)
    return ReferenceOutcome(
        kind="value", value=_edge_pairs(diff_graphs(earlier, later).extra_edges))


@_register_temporal("churned_nodes_between")
def _churned_nodes_between(timeline: Any, intent: Intent) -> ReferenceOutcome:
    from repro.graph.diff import diff_graphs

    earlier, later = _window(timeline, intent)
    diff = diff_graphs(earlier, later)
    return ReferenceOutcome(kind="value", value={
        "departed": sorted(str(node) for node in diff.missing_nodes),
        "joined": sorted(str(node) for node in diff.extra_nodes),
    })


@_register_temporal("capacity_drop_at")
def _capacity_drop_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    attribute = intent.param("attribute", "capacity_gbps")
    baseline = _total_edge_attr(timeline.initial_graph, attribute)
    current = _total_edge_attr(timeline.graph_at(float(intent.param("at", 0.0))),
                               attribute)
    return ReferenceOutcome(kind="value", value=round(baseline - current, 6))


@_register_temporal("degraded_links_at")
def _degraded_links_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """Links still up at *at* whose capacity dropped below its initial value."""
    attribute = intent.param("attribute", "capacity_gbps")
    initial = timeline.initial_graph
    current = timeline.graph_at(float(intent.param("at", 0.0)))
    degraded = []
    for source, target, attrs in current.edges(data=True):
        if not initial.has_edge(source, target):
            continue
        before = initial.edge_attributes(source, target).get(attribute)
        now = attrs.get(attribute)
        if before is not None and now is not None and now < before:
            degraded.append((source, target))
    return ReferenceOutcome(kind="value", value=_edge_pairs(degraded))


@_register_temporal("node_count_at")
def _node_count_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    graph = timeline.graph_at(float(intent.param("at", 0.0)))
    return ReferenceOutcome(kind="value", value=graph.node_count)


@_register_temporal("edge_count_at")
def _edge_count_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    graph = timeline.graph_at(float(intent.param("at", 0.0)))
    return ReferenceOutcome(kind="value", value=graph.edge_count)


@_register_temporal("traffic_change_between")
def _traffic_change_between(timeline: Any, intent: Intent) -> ReferenceOutcome:
    key = intent.param("key", "bytes")
    earlier, later = _window(timeline, intent)
    delta = _total_edge_attr(later, key) - _total_edge_attr(earlier, key)
    return ReferenceOutcome(kind="value", value=round(delta, 6))


@_register_temporal("peak_traffic_time")
def _peak_traffic_time(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """The snapshot time with the highest total traffic (first on ties)."""
    key = intent.param("key", "bytes")
    best_time, best_total = None, None
    for snapshot in timeline.snapshots:
        total = _total_edge_attr(snapshot.graph, key)
        if best_total is None or total > best_total:
            best_time, best_total = snapshot.time, total
    return ReferenceOutcome(kind="value", value=best_time)


@_register_temporal("snapshot_count")
def _snapshot_count(timeline: Any, intent: Intent) -> ReferenceOutcome:
    return ReferenceOutcome(kind="value", value=len(timeline.snapshots))


@_register_temporal("isolated_nodes_at")
def _isolated_nodes_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    graph = timeline.graph_at(float(intent.param("at", 0.0)))
    isolated = sorted(str(node) for node in graph.nodes() if graph.degree(node) == 0)
    return ReferenceOutcome(kind="value", value=isolated)


# ---------------------------------------------------------------------------
# correlated-dynamics intents: SRLGs, maintenance drains, regional gravity
# ---------------------------------------------------------------------------
def _initial_srlgs(timeline: Any) -> Dict[str, List[Tuple[Any, Any]]]:
    """The SRLGs declared on the scenario's build-time topology."""
    from repro.scenarios.events import graph_srlgs

    return graph_srlgs(timeline.initial_graph)


@_register_temporal("failed_srlgs_at")
def _failed_srlgs_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """SRLG groups *fully* failed at *at*: every member link is absent."""
    graph = timeline.graph_at(float(intent.param("at", 0.0)))
    failed = sorted(
        name for name, members in _initial_srlgs(timeline).items()
        if members and all(not graph.has_edge(source, target)
                           for source, target in members))
    return ReferenceOutcome(kind="value", value=failed)


@_register_temporal("srlg_links_down_at")
def _srlg_links_down_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """The member links of one SRLG still absent at *at* (partial repair)."""
    group = intent.param("group")
    srlgs = _initial_srlgs(timeline)
    if group not in srlgs:
        raise UnknownIntentError(
            f"srlg_links_down_at names unknown SRLG {group!r}; groups "
            f"declared on scenario {timeline.scenario_name!r}: {sorted(srlgs)}")
    graph = timeline.graph_at(float(intent.param("at", 0.0)))
    down = [(source, target) for source, target in srlgs[group]
            if not graph.has_edge(source, target)]
    return ReferenceOutcome(kind="value", value=_edge_pairs(down))


@_register_temporal("drained_links_between")
def _drained_links_between(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """Links drained *and restored* inside the window: present at both window
    edges, absent in at least one snapshot strictly between them."""
    earlier, later = _window(timeline, intent)
    start, end = _window_bounds(timeline, intent)
    drained = set()
    for snapshot in timeline.snapshots:
        if not start < snapshot.time < end:
            continue
        for source, target in earlier.edges():
            if later.has_edge(source, target) and not snapshot.graph.has_edge(source, target):
                drained.add((source, target))
    return ReferenceOutcome(kind="value", value=_edge_pairs(drained))


@_register_temporal("drained_nodes_between")
def _drained_nodes_between(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """Nodes drained and restored inside the window (cf. drained links)."""
    earlier, later = _window(timeline, intent)
    start, end = _window_bounds(timeline, intent)
    drained = set()
    for snapshot in timeline.snapshots:
        if not start < snapshot.time < end:
            continue
        for node in earlier.nodes():
            if later.has_node(node) and not snapshot.graph.has_node(node):
                drained.add(node)
    return ReferenceOutcome(kind="value", value=sorted(str(node) for node in drained))


def _traffic_by_region(graph: PropertyGraph, key: str,
                       region_attribute: str = "region") -> Dict[str, float]:
    """Total traffic per region bucket; inter-region edges bucket under the
    sorted region pair ("nw-sw"), so every edge lands in exactly one bucket."""
    totals: Dict[str, float] = {}
    for source, target, attrs in graph.edges(data=True):
        region_source = graph.node_attributes(source).get(region_attribute)
        region_target = graph.node_attributes(target).get(region_attribute)
        if region_source is None or region_target is None:
            continue
        bucket = (region_source if region_source == region_target
                  else "-".join(sorted((region_source, region_target))))
        totals[bucket] = totals.get(bucket, 0) + attrs.get(key, 0)
    return totals


# ---------------------------------------------------------------------------
# MALT lifecycle intents over timelines: drains, orphaned ports, capacity
# ---------------------------------------------------------------------------
@_register_temporal("entity_count_at")
def _entity_count_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """Entities of one MALT kind present at *at* (drained nodes excluded)."""
    entity_type = intent.param("entity_type", _EK_PACKET_SWITCH)
    graph = timeline.graph_at(float(intent.param("at", 0.0)))
    count = sum(1 for _, attrs in graph.nodes(data=True)
                if attrs.get("type") == entity_type)
    return ReferenceOutcome(kind="value", value=count)


@_register_temporal("entity_capacity_at")
def _entity_capacity_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """Total ``capacity`` of one MALT kind still racked at *at*."""
    entity_type = intent.param("entity_type", _EK_PACKET_SWITCH)
    graph = timeline.graph_at(float(intent.param("at", 0.0)))
    total = sum(attrs.get("capacity", 0) for _, attrs in graph.nodes(data=True)
                if attrs.get("type") == entity_type)
    return ReferenceOutcome(kind="value", value=total)


@_register_temporal("orphaned_ports_at")
def _orphaned_ports_at(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """Ports at *at* with no containing parent (their switch is drained)."""
    graph = timeline.graph_at(float(intent.param("at", 0.0)))
    orphaned = []
    for node, attrs in graph.nodes(data=True):
        if attrs.get("type") != _EK_PORT:
            continue
        contained = any(
            graph.edge_attributes(parent, node).get("relationship") == _RK_CONTAINS
            for parent in graph.predecessors(node))
        if not contained:
            orphaned.append(str(node))
    return ReferenceOutcome(kind="value", value=sorted(orphaned))


@_register_temporal("region_traffic_between")
def _region_traffic_between(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """Per-region traffic delta over the window (gravity hotspot footprint)."""
    key = intent.param("key", "bytes")
    earlier, later = _window(timeline, intent)
    before = _traffic_by_region(earlier, key)
    after = _traffic_by_region(later, key)
    deltas = {bucket: round(after.get(bucket, 0) - before.get(bucket, 0), 6)
              for bucket in sorted(set(before) | set(after))}
    return ReferenceOutcome(kind="value", value=deltas)


@_register_temporal("top_region_by_traffic_growth")
def _top_region_by_traffic_growth(timeline: Any, intent: Intent) -> ReferenceOutcome:
    """The region bucket whose traffic grew most over the window (ties break
    toward the lexicographically smallest bucket name)."""
    deltas = _region_traffic_between(timeline, intent).value
    if not deltas:
        return ReferenceOutcome(kind="value", value=None)
    best = min(deltas, key=lambda bucket: (-deltas[bucket], bucket))
    return ReferenceOutcome(kind="value", value=best)
