"""The metrics registry: named counters, gauges, and streaming histograms.

Metrics are *telemetry*: they accumulate observations about where a run
spends its time and how its caches behave, and they must never influence any
computed result — the inertness contract of :mod:`repro.obs` (metric state
is excluded from task digests, cache keys, and every rendered table).

Histograms are **streaming**: observations land in fixed log-spaced buckets
(:data:`BUCKETS_PER_DECADE` per factor of ten), so p50/p95/p99 quantiles are
available without storing individual samples.  The quantile error is bounded
by one bucket's width — a relative error of ``10 ** (1 / BUCKETS_PER_DECADE)
- 1`` (~12%), plenty for latency triage — while exact ``count``, ``sum``,
``min`` and ``max`` are tracked alongside.

Every metric type can :meth:`snapshot` itself into plain JSON data and can
``merge`` a snapshot back in, which is how worker processes ship their
per-task metric deltas to the parent through the execution fabric.
"""

from __future__ import annotations

import logging
import math
import threading
from typing import Any, Dict, Optional

logger = logging.getLogger(__name__)

#: log-spaced bucket resolution: buckets per factor of ten.  20 buckets per
#: decade bounds the quantile estimate's relative error at ~12%.
BUCKETS_PER_DECADE = 20

#: smallest strictly-positive value with its own bucket; observations at or
#: below zero (and underflows) land in the dedicated underflow bucket
HISTOGRAM_FLOOR = 1e-7

#: the quantiles every snapshot reports
SNAPSHOT_QUANTILES = (0.50, 0.95, 0.99)

_UNDERFLOW = "underflow"


class Counter:
    """A monotonically-increasing named count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value

    def merge(self, snapshot: int) -> None:
        self.inc(int(snapshot))


class Gauge:
    """A last-write-wins named measurement."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value

    def merge(self, snapshot: float) -> None:
        # merging process-local gauges keeps the most extreme reading: a
        # gauge folded across workers answers "how large did this get"
        with self._lock:
            self._value = max(self._value, float(snapshot))


def bucket_index(value: float) -> int:
    """Log-spaced bucket index of a strictly positive *value*."""
    return math.floor(math.log10(value / HISTOGRAM_FLOOR) * BUCKETS_PER_DECADE)


def bucket_upper_bound(index: int) -> float:
    """Exclusive upper bound of bucket *index*."""
    return HISTOGRAM_FLOOR * 10 ** ((index + 1) / BUCKETS_PER_DECADE)


class Histogram:
    """A streaming histogram over fixed log-spaced buckets.

    ``observe`` is O(1) and allocation-free on the hot path (bucket counts
    live in a sparse dict); quantiles walk the sorted bucket keys and return
    the crossing bucket's upper bound, so the estimate can overshoot the true
    sample quantile by at most one bucket width and never undershoot below
    the bucket's lower bound.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: Dict[Any, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        key = _UNDERFLOW if value <= HISTOGRAM_FLOOR else bucket_index(value)
        with self._lock:
            self._buckets[key] = self._buckets.get(key, 0) + 1
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    # ------------------------------------------------------------------
    def quantile(self, fraction: float) -> Optional[float]:
        """Estimated value at *fraction* (0..1]; ``None`` when empty."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"quantile fraction must be in (0, 1], got {fraction}")
        if self.count == 0:
            return None
        # the observation with (1-based) rank ceil(fraction * count) — the
        # same convention as indexing a sorted sample list
        rank = math.ceil(fraction * self.count)
        seen = self._buckets.get(_UNDERFLOW, 0)
        if seen >= rank:
            return HISTOGRAM_FLOOR
        for index in sorted(key for key in self._buckets if key != _UNDERFLOW):
            seen += self._buckets[index]
            if seen >= rank:
                # cap the estimate at the exact max: the top bucket's upper
                # bound can exceed every observed value
                upper = bucket_upper_bound(index)
                return upper if self.max is None else min(upper, self.max)
        return self.max

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            snapshot: Dict[str, Any] = {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
                "buckets": {str(key): count
                            for key, count in sorted(self._buckets.items(),
                                                     key=lambda item: str(item[0]))},
            }
        for fraction in SNAPSHOT_QUANTILES:
            snapshot[f"p{int(fraction * 100)}"] = self.quantile(fraction)
        return snapshot

    def merge(self, snapshot: Dict[str, Any]) -> None:
        with self._lock:
            for key, count in snapshot.get("buckets", {}).items():
                parsed = _UNDERFLOW if key == _UNDERFLOW else int(key)
                self._buckets[parsed] = self._buckets.get(parsed, 0) + int(count)
            self.count += int(snapshot.get("count", 0))
            self.total += float(snapshot.get("sum", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                incoming = snapshot.get(bound)
                if incoming is None:
                    continue
                current = getattr(self, bound)
                setattr(self, bound,
                        incoming if current is None else pick(current, incoming))


class MetricsRegistry:
    """A named, typed collection of metrics with get-or-create accessors.

    One module-level default registry backs the whole process (see
    :func:`default_registry`); tests and worker-side capture swap in private
    instances via :func:`set_default_registry`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, metric_type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, metric_type(name))
        if not isinstance(metric, metric_type):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {metric_type.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-JSON dump: ``{"counters": .., "gauges": .., "histograms": ..}``."""
        snapshot: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                snapshot["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                snapshot["gauges"][name] = metric.snapshot()
            else:
                snapshot["histograms"][name] = metric.snapshot()
        return snapshot

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold another registry's snapshot (e.g. a worker's delta) into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).merge(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).merge(value)
        for name, value in snapshot.get("histograms", {}).items():
            self.histogram(name).merge(value)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


# ---------------------------------------------------------------------------
# the process-wide default registry
# ---------------------------------------------------------------------------
_default_registry = MetricsRegistry()
_install_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the process default; returns the previous one.

    The install point is reachable from thread-pool workers (observation
    merge), so the swap is serialized: two concurrent installs must not
    both read the same "previous" registry and leak one replacement.
    """
    global _default_registry  # noqa: PLW0603 - process-global install point
    with _install_lock:
        previous = _default_registry
        _default_registry = registry
        return previous
