"""The span tracer: nested, thread-safe timing of the query pipeline.

A span names one timed region (``synthesis.emit``, ``sandbox.execute``,
``exec.task`` ...) with monotonic start/duration, free-form attributes, and a
parent link maintained through :mod:`contextvars` — so nesting is correct
across threads and ``async`` contexts without any explicit plumbing.

Tracing is **off by default**: :func:`span` always times its body and feeds
the duration into the default metrics registry (a streaming histogram named
``span.<name>.seconds``), but spans are only *buffered* while the tracer is
enabled.  The buffer is per process; worker processes drain theirs into the
execution fabric's wire results (see :func:`repro.exec.workers.run_task`) and
the parent re-ingests them, so a parallel sweep yields one merged trace.

Inertness contract: span state never reaches task payloads, content digests,
cache keys, or any rendered table — enabling tracing cannot change a single
result byte, only add telemetry on the side.
"""

from __future__ import annotations

import contextlib
import logging
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import default_registry

logger = logging.getLogger(__name__)

#: the innermost open span's id in this execution context (None = root)
_current_span_id: ContextVar[Optional[int]] = ContextVar(
    "repro_obs_current_span", default=None)

#: prefix of the auto-fed latency histograms (one per distinct span name)
SPAN_HISTOGRAM_PREFIX = "span."


@dataclass
class Span:
    """One closed timed region."""

    name: str
    span_id: int
    parent_id: Optional[int]
    #: monotonic start, seconds since the tracer's perf-counter epoch
    start_s: float
    duration_s: float
    #: wall-clock start (epoch seconds) — only used to align traces that
    #: were recorded by different processes; ordering within a process
    #: always comes from the monotonic ``start_s``
    start_wall: float
    thread_id: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "start_wall": self.start_wall,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """A per-process span buffer with monotonic ids."""

    def __init__(self) -> None:
        self.enabled = False
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1
        #: offset turning perf-counter readings into wall-clock seconds;
        #: used only to place exported Chrome trace events on a real
        #: timeline — span durations, digests, and result bytes never see it
        self.wall_offset = time.time() - time.perf_counter()  # repro: allow[det-wallclock]

    # ------------------------------------------------------------------
    def allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    def drain(self) -> Dict[str, Any]:
        """Detach the buffered spans as a plain-data batch (buffer empties).

        The batch carries the recording process's label so the parent's
        :meth:`ingest` can keep per-process rows apart in the exported trace.
        """
        with self._lock:
            spans, self._spans = self._spans, []
        return {
            "process": f"pid-{os.getpid()}",
            "spans": [span.to_dict() for span in spans],
        }

    def ingest(self, batch: Dict[str, Any],
               process: Optional[str] = None) -> int:
        """Fold a drained batch (usually from a worker process) into this buffer.

        Span ids are remapped onto this tracer's id space (parent links
        inside the batch are preserved); the originating process label is
        stamped into each span's attributes.  Returns how many spans landed.
        """
        label = process or batch.get("process") or "worker"
        id_map: Dict[int, int] = {}
        ingested = 0
        for span_dict in batch.get("spans", ()):
            id_map[span_dict["span_id"]] = self.allocate_id()
        for span_dict in batch.get("spans", ()):
            attrs = dict(span_dict.get("attrs", {}))
            attrs.setdefault("process", label)
            parent = span_dict.get("parent_id")
            self.record(Span(
                name=span_dict["name"],
                span_id=id_map[span_dict["span_id"]],
                # a batch parent that is not itself in the batch was left
                # open in the worker (impossible for fabric tasks); root it
                parent_id=id_map.get(parent) if parent is not None else None,
                start_s=float(span_dict["start_s"]),
                duration_s=float(span_dict["duration_s"]),
                start_wall=float(span_dict["start_wall"]),
                thread_id=int(span_dict.get("thread_id", 0)),
                attrs=attrs,
            ))
            ingested += 1
        return ingested


# ---------------------------------------------------------------------------
# the process-wide tracer
# ---------------------------------------------------------------------------
_tracer = Tracer()
_install_lock = threading.Lock()


def get_tracer() -> Tracer:
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the process tracer; returns the previous one.

    Worker threads re-install tracers when merging cross-process spans, so
    the swap is serialized — two concurrent installs must not both read the
    same "previous" tracer and leak one of the replacements.
    """
    global _tracer  # noqa: PLW0603 - process-global install point
    with _install_lock:
        previous = _tracer
        _tracer = tracer
        return previous


def enable_tracing() -> None:
    _tracer.enabled = True


def disable_tracing() -> None:
    _tracer.enabled = False


def tracing_enabled() -> bool:
    return _tracer.enabled


# ---------------------------------------------------------------------------
# the one instrumentation primitive
# ---------------------------------------------------------------------------
@contextlib.contextmanager
def span(name: str, attrs: Optional[Dict[str, Any]] = None) -> Iterator[None]:
    """Time a region: feed its latency histogram, buffer a span if tracing.

    Cheap when tracing is disabled — two clock reads and one histogram
    observation — so instrumentation can stay on the hot path permanently.
    Exceptions propagate; the span still closes and is marked with an
    ``error`` attribute.
    """
    tracer = _tracer
    buffering = tracer.enabled
    if buffering:
        span_id = tracer.allocate_id()
        parent_token = _current_span_id.set(span_id)
    started = time.perf_counter()
    error_name: Optional[str] = None
    try:
        yield
    except BaseException as error:
        error_name = type(error).__name__
        raise
    finally:
        duration = time.perf_counter() - started
        default_registry().histogram(
            SPAN_HISTOGRAM_PREFIX + name + ".seconds").observe(duration)
        if buffering:
            _current_span_id.reset(parent_token)
            parent_id = _current_span_id.get()
            span_attrs = dict(attrs) if attrs else {}
            if error_name is not None:
                span_attrs["error"] = error_name
            tracer.record(Span(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                start_s=started,
                duration_s=duration,
                start_wall=tracer.wall_offset + started,
                thread_id=threading.get_ident() & 0xFFFF,
                attrs=span_attrs,
            ))
