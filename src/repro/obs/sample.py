"""The resource sampler: RSS and CPU time as max-merge gauges, stdlib only.

Latency histograms say where the time went; this module says what it cost
in memory and CPU.  :func:`sample_now` takes one reading — peak RSS via
:func:`resource.getrusage` (with a ``/proc/self/status`` fallback) and
cumulative CPU seconds — and folds it into the default registry's gauges:

* ``resource.max_rss_bytes`` — the process's peak resident set;
* ``resource.cpu_seconds``   — user + system CPU consumed so far;
* ``resource.samples``       — a counter of readings taken.

Gauges merge by ``max`` (see :class:`repro.obs.metrics.Gauge`), so the
readings compose across processes exactly like spans do: each pool worker
samples into its isolated capture registry (one reading per task, flagged
through the fabric's wire ``obs`` marker), the parent merges the snapshots,
and the merged gauge answers "how large did the biggest process get".

:class:`ResourceSampler` is the parent-side background thread: it samples
every ``interval_s`` for the duration of a sweep so a memory ramp inside a
long serial stage is caught too, not just its final value.  Sampling obeys
the observability inertness contract — gauges are telemetry, excluded from
digests, cache keys, and every rendered table.
"""

from __future__ import annotations

import logging
import os
import sys
import threading
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry, default_registry

try:                                    # unix-only in CPython; gate for others
    import resource as _resource
except ImportError:                     # pragma: no cover - non-unix platform
    _resource = None

logger = logging.getLogger(__name__)

#: how often the background sampler reads, in seconds
DEFAULT_SAMPLE_INTERVAL_S = 0.05

GAUGE_MAX_RSS = "resource.max_rss_bytes"
GAUGE_CPU_SECONDS = "resource.cpu_seconds"
COUNTER_SAMPLES = "resource.samples"

#: process-wide flag mirrored into the fabric's wire ``obs`` marker so pool
#: workers know to take a per-task reading (cf. ``tracing_enabled``)
_sampling_enabled = False


def enable_sampling() -> None:
    global _sampling_enabled  # noqa: PLW0603 - process-global toggle
    _sampling_enabled = True


def disable_sampling() -> None:
    global _sampling_enabled  # noqa: PLW0603 - process-global toggle
    _sampling_enabled = False


def sampling_enabled() -> bool:
    return _sampling_enabled


# ---------------------------------------------------------------------------
# readings
# ---------------------------------------------------------------------------
def _proc_rss_bytes() -> Optional[float]:
    """Current RSS from ``/proc/self/status`` (Linux), ``None`` elsewhere."""
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) * 1024.0   # value is in kB
    except OSError:
        pass
    return None


def read_resources() -> Dict[str, float]:
    """One reading: ``{"max_rss_bytes": ..., "cpu_seconds": ...}``.

    Peak RSS comes from ``getrusage`` (``ru_maxrss`` is kilobytes on Linux,
    bytes on macOS); where :mod:`resource` is unavailable the current RSS
    from ``/proc`` stands in (an under-estimate of the peak, still useful
    under max-merge).  Missing sources simply yield 0.0 — a reading never
    raises.
    """
    rss = 0.0
    cpu = 0.0
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        scale = 1.0 if sys.platform == "darwin" else 1024.0
        rss = float(usage.ru_maxrss) * scale
        cpu = float(usage.ru_utime) + float(usage.ru_stime)
    else:                               # pragma: no cover - non-unix platform
        proc_rss = _proc_rss_bytes()
        if proc_rss is not None:
            rss = proc_rss
        times = os.times()
        cpu = float(times.user) + float(times.system)
    return {"max_rss_bytes": rss, "cpu_seconds": cpu}


def sample_now(registry: Optional[MetricsRegistry] = None) -> Dict[str, float]:
    """Take one reading and fold it into *registry* (default: process default).

    Gauges are updated through ``merge`` (keep-the-max), so repeated samples
    ratchet upward and a late small reading cannot erase an earlier peak.
    """
    registry = registry if registry is not None else default_registry()
    reading = read_resources()
    registry.gauge(GAUGE_MAX_RSS).merge(reading["max_rss_bytes"])
    registry.gauge(GAUGE_CPU_SECONDS).merge(reading["cpu_seconds"])
    registry.counter(COUNTER_SAMPLES).inc()
    return reading


# ---------------------------------------------------------------------------
# the background sampler thread
# ---------------------------------------------------------------------------
class ResourceSampler:
    """Sample this process's resources periodically on a daemon thread.

    Usable as a context manager; ``stop()`` always takes one final reading
    so even a sweep shorter than the interval records its footprint.
    """

    def __init__(self, interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = interval_s
        self._registry = registry
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            sample_now(self._registry)

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        sample_now(self._registry)      # a first reading before the wait
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-sampler", daemon=True)
        self._thread.start()
        logger.debug("resource sampler started (interval %.3fs)", self.interval_s)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        sample_now(self._registry)      # the closing reading
        logger.debug("resource sampler stopped")

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
