"""Exporters: Chrome trace-event JSON and metrics snapshot JSON.

The trace dump follows the Trace Event Format's ``X`` (complete) events and
loads directly in ``chrome://tracing`` and Perfetto.  Every recording
process becomes its own ``pid`` row (named via ``process_name`` metadata
events), so a ``--jobs N`` sweep renders as N worker lanes under the parent.

Timestamps: within a process, event ``ts`` derives from the span's monotonic
start; across processes, the per-process wall-clock anchor (captured once at
tracer creation) aligns the lanes.  The whole trace is re-based so the
earliest event sits at ``ts = 0``.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import Span, get_tracer

logger = logging.getLogger(__name__)

#: the parent process's row label in the exported trace
MAIN_PROCESS_LABEL = "main"

TRACE_CATEGORY = "repro"


def spans_to_trace_events(spans: List[Span]) -> List[Dict[str, Any]]:
    """Convert closed spans into Chrome trace-event dicts."""
    if not spans:
        return []
    process_labels: List[str] = []
    for span in spans:
        label = span.attrs.get("process", MAIN_PROCESS_LABEL)
        if label not in process_labels:
            process_labels.append(label)
    # the parent renders first; worker lanes follow in first-seen order
    process_labels.sort(key=lambda label: (label != MAIN_PROCESS_LABEL, label))
    pids = {label: index + 1 for index, label in enumerate(process_labels)}

    base_wall = min(span.start_wall for span in spans)
    events: List[Dict[str, Any]] = []
    for label, pid in sorted(pids.items(), key=lambda item: item[1]):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    for span in spans:
        label = span.attrs.get("process", MAIN_PROCESS_LABEL)
        args = {key: value for key, value in span.attrs.items() if key != "process"}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": TRACE_CATEGORY,
            "ph": "X",
            "ts": round((span.start_wall - base_wall) * 1e6, 3),
            "dur": round(span.duration_s * 1e6, 3),
            "pid": pids[label],
            "tid": span.thread_id,
            "args": args,
        })
    return events


def trace_document(spans: Optional[List[Span]] = None) -> Dict[str, Any]:
    """The full Chrome-loadable trace document for *spans* (default: tracer's)."""
    if spans is None:
        spans = get_tracer().spans
    return {
        "traceEvents": spans_to_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "span_count": len(spans)},
    }


def write_trace(path, spans: Optional[List[Span]] = None) -> Path:
    """Write the trace document as JSON; returns the written path.

    Parent directories are created, so ``--trace out/dir/trace.json``
    works without a prior ``mkdir``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = trace_document(spans)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    logger.info("wrote %d trace events to %s",
                len(document["traceEvents"]), path)
    return path


def metrics_document(registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """The metrics snapshot document for *registry* (default: process default)."""
    registry = registry if registry is not None else default_registry()
    return {"format": "repro.obs.metrics/1", **registry.snapshot()}


def write_metrics(path, registry: Optional[MetricsRegistry] = None) -> Path:
    """Write the metrics snapshot as JSON; returns the written path.

    Parent directories are created, so ``--metrics-out out/dir/m.json``
    works without a prior ``mkdir``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = metrics_document(registry)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    logger.info("wrote metrics snapshot (%d counters, %d histograms) to %s",
                len(document["counters"]), len(document["histograms"]), path)
    return path
