"""``repro.obs`` — pipeline-wide tracing, metrics, and latency histograms.

The observability layer every perf-facing PR reads its numbers from:

* :func:`span` — the one instrumentation primitive.  Always feeds a
  streaming latency histogram (``span.<name>.seconds``); buffers a nested,
  thread-safe :class:`~repro.obs.trace.Span` only while tracing is enabled.
* :class:`MetricsRegistry` — named counters, gauges, and log-bucketed
  histograms reporting p50/p95/p99 without storing samples; one process-wide
  default plus injectable instances for tests.
* exporters — Chrome trace-event JSON (``chrome://tracing`` / Perfetto) and
  a metrics snapshot JSON, surfaced as ``--trace`` / ``--metrics-out`` on
  the sweep CLI commands.

On top of the telemetry sits the analysis layer (``repro obs`` on the CLI):

* :class:`RunLedger` — an append-only per-run record store
  (``.repro-ledger/``) of metrics snapshots plus run metadata;
* :mod:`repro.obs.analyze` — self-time attribution, critical-path
  extraction, and metrics-snapshot diffing under an explicit noise band;
* :class:`ResourceSampler` / :func:`sample_now` — RSS and CPU readings as
  max-merge gauges, taken per task in pool workers and periodically in the
  parent.

The hard contract is **inertness**: observability state is excluded from
task content digests and cache keys, serial and parallel sweeps stay
byte-identical with tracing on, and the disabled-path overhead is two clock
reads per span.  :func:`collect_observations` is the worker-process side of
the fabric round trip: it isolates a task's spans and metric deltas so the
parent can merge every worker's telemetry into one trace.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.analyze import (
    DiffEntry,
    MetricsDiff,
    TraceSpan,
    critical_path,
    diff_metrics,
    self_time_table,
    spans_from_trace,
)
from repro.obs.export import (
    metrics_document,
    spans_to_trace_events,
    trace_document,
    write_metrics,
    write_trace,
)
from repro.obs.ledger import DEFAULT_LEDGER_DIR, RunLedger
from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.sample import (
    ResourceSampler,
    disable_sampling,
    enable_sampling,
    sample_now,
    sampling_enabled,
)
from repro.obs.trace import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
)


class ObservationCapture:
    """What :func:`collect_observations` hands back after the body ran."""

    def __init__(self) -> None:
        self.spans: Optional[dict] = None      # drained span batch (or None)
        self.metrics: Optional[dict] = None    # registry snapshot delta

    def to_wire(self) -> dict:
        """The plain-data form shipped back through the fabric."""
        return {"spans": self.spans, "metrics": self.metrics}


@contextlib.contextmanager
def collect_observations(trace: bool = False) -> Iterator[ObservationCapture]:
    """Capture the body's spans and metric deltas in isolation.

    A fresh tracer and registry are swapped in for the duration, so the
    capture contains exactly the body's telemetry — nothing recorded before,
    nothing leaking after.  Used by pool workers to round-trip per-task
    observations to the parent; also handy in tests.
    """
    capture = ObservationCapture()
    registry = MetricsRegistry()
    tracer = Tracer()
    tracer.enabled = trace
    previous_registry = set_default_registry(registry)
    previous_tracer = set_tracer(tracer)
    try:
        yield capture
    finally:
        set_tracer(previous_tracer)
        set_default_registry(previous_registry)
        capture.metrics = registry.snapshot()
        capture.spans = tracer.drain() if trace else None


def ingest_observations(wire: Optional[dict]) -> None:
    """Merge one worker task's captured telemetry into the parent's state."""
    if not wire:
        return
    spans = wire.get("spans")
    if spans and spans.get("spans"):
        get_tracer().ingest(spans)
    metrics = wire.get("metrics")
    if metrics:
        default_registry().merge_snapshot(metrics)


__all__ = [
    "BUCKETS_PER_DECADE",
    "Counter",
    "DEFAULT_LEDGER_DIR",
    "DiffEntry",
    "Gauge",
    "Histogram",
    "MetricsDiff",
    "MetricsRegistry",
    "ObservationCapture",
    "ResourceSampler",
    "RunLedger",
    "Span",
    "TraceSpan",
    "Tracer",
    "collect_observations",
    "critical_path",
    "default_registry",
    "diff_metrics",
    "disable_sampling",
    "disable_tracing",
    "enable_sampling",
    "enable_tracing",
    "get_tracer",
    "ingest_observations",
    "metrics_document",
    "sample_now",
    "sampling_enabled",
    "self_time_table",
    "set_default_registry",
    "set_tracer",
    "span",
    "spans_from_trace",
    "spans_to_trace_events",
    "trace_document",
    "tracing_enabled",
    "write_metrics",
    "write_trace",
]
