"""The run ledger: an append-only per-run record of metrics and metadata.

Every benchmark/cost sweep can drop one JSON entry into ``.repro-ledger/``:
the run's full metrics snapshot (counters, gauges, latency histograms with
their quantiles) plus the metadata needed to interpret it later — command
line, scenario set, backends, ``--jobs``, package version, host core count,
wall time.  Entries are immutable once written and never read back by the
pipeline itself, so the ledger shares the observability layer's inertness
contract: recording a run cannot change its results.

What the ledger buys: ``repro obs diff`` compares any two entries under the
noise band (the per-stage regression oracle), and ``repro obs ledger
list/show`` answers "what did I run last Tuesday and how slow was it"
without re-running anything.

Entry ids are ``<nanosecond-hex>-<pid>`` so filenames sort chronologically
and two processes recording in the same nanosecond cannot collide; lookup
accepts any unique id prefix plus the aliases ``latest`` and ``prev``.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.utils.validation import ValidationError

logger = logging.getLogger(__name__)

#: where sweep commands record their runs unless told otherwise
DEFAULT_LEDGER_DIR = ".repro-ledger"

LEDGER_FORMAT = "repro.obs.ledger/1"

#: lookup aliases: offset from the newest entry
_ALIASES = {"latest": 1, "prev": 2}


class RunLedger:
    """Append-only store of per-run observability records."""

    def __init__(self, directory: Any = DEFAULT_LEDGER_DIR) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, command: str,
               metrics: Dict[str, Any],
               meta: Optional[Dict[str, Any]] = None,
               argv: Optional[List[str]] = None) -> Dict[str, Any]:
        """Append one run record; returns the written entry (with its id).

        *metrics* is a metrics snapshot document (or a
        :class:`MetricsRegistry`, snapshotted here); *meta* carries the
        run's knobs (jobs, scenarios, backends, wall time, ...).
        """
        if isinstance(metrics, MetricsRegistry):
            metrics = metrics.snapshot()
        # the ledger's whole purpose is run provenance: *when* a run happened
        # is part of the record, and entry ids must be unique across
        # processes.  Neither value feeds digests, cache keys, or result
        # bytes, so the wall-clock reads are deliberate.
        recorded_at = time.time()  # repro: allow[det-wallclock]
        entry_id = f"{time.time_ns():016x}-{os.getpid()}"  # repro: allow[det-wallclock]
        entry = {
            "format": LEDGER_FORMAT,
            "id": entry_id,
            "recorded_at": recorded_at,
            "command": command,
            "argv": list(argv) if argv is not None else None,
            "meta": dict(meta or {}),
            "metrics": metrics,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{entry_id}.json"
        path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        logger.info("ledger: recorded run %s (%s) in %s",
                    entry_id, command, self.directory)
        return entry

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def entry_ids(self) -> List[str]:
        """Every recorded entry id, oldest first (filenames sort by time)."""
        if not self.directory.is_dir():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def load(self, entry_id: str) -> Dict[str, Any]:
        path = self.directory / f"{entry_id}.json"
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ValidationError(
                f"no ledger entry {entry_id!r} in {self.directory}") from None
        except (OSError, json.JSONDecodeError) as error:
            raise ValidationError(
                f"cannot load ledger entry {path}: {error}") from error
        if entry.get("format") != LEDGER_FORMAT:
            raise ValidationError(
                f"{path} is not a ledger entry "
                f"(format {entry.get('format')!r}, expected {LEDGER_FORMAT!r})")
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        """Every recorded entry, oldest first."""
        return [self.load(entry_id) for entry_id in self.entry_ids()]

    def find(self, token: str) -> Dict[str, Any]:
        """Resolve *token* (unique id prefix, ``latest``, or ``prev``)."""
        ids = self.entry_ids()
        if not ids:
            raise ValidationError(
                f"ledger {self.directory} is empty — run a sweep with "
                f"--ledger first")
        if token in _ALIASES:
            offset = _ALIASES[token]
            if len(ids) < offset:
                raise ValidationError(
                    f"ledger {self.directory} has only {len(ids)} entr"
                    f"{'y' if len(ids) == 1 else 'ies'}, cannot resolve "
                    f"{token!r}")
            return self.load(ids[-offset])
        matches = [entry_id for entry_id in ids if entry_id.startswith(token)]
        if not matches:
            raise ValidationError(
                f"no ledger entry matches {token!r} in {self.directory}")
        if len(matches) > 1:
            raise ValidationError(
                f"{token!r} is ambiguous in {self.directory}: "
                f"matches {', '.join(matches[:5])}"
                + (" ..." if len(matches) > 5 else ""))
        return self.load(matches[0])

    def latest(self, count: int = 1) -> List[Dict[str, Any]]:
        """The newest *count* entries, oldest of them first."""
        ids = self.entry_ids()
        return [self.load(entry_id) for entry_id in ids[-count:]]

    def __len__(self) -> int:
        return len(self.entry_ids())
