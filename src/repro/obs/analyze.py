"""Trace and metrics analysis: from raw telemetry to a verdict.

:mod:`repro.obs` records what happened (spans, counters, histograms); this
module answers the operator's questions about it:

* **Where does the time go?**  :func:`self_time_table` attributes each
  span's *self* time (its duration minus its direct children's), so a
  parent that merely waits on its children stops dominating the table.
* **What is the slowest chain?**  :func:`critical_path` walks from the
  slowest root span down its slowest child at every level — the chain a
  latency optimisation has to shorten.
* **Did this run regress?**  :func:`diff_metrics` compares two metrics
  snapshots (typically two ledger entries) quantile by quantile under an
  explicit noise model: a histogram only counts as a regression when the
  current quantile exceeds the baseline by *both* a relative band and an
  absolute floor, and only when both sides saw enough observations.  A
  metric present on one side only is reported as ``new``/``removed`` —
  never as a crash, never as a silent 0-vs-N regression.

The noise band follows the O&M-metrics hotspot-localization idea: with a
per-stage latency distribution recorded on every run, operational metrics
alone — compared across time against an explicit noise model — suffice to
localize a degradation to the stage that caused it.

Everything here consumes the *exported* JSON forms (``write_trace`` /
``write_metrics`` documents), so analysis works offline on artifacts — no
live tracer required.  The span-parsing helpers (:data:`X_EVENT_FIELDS`,
:func:`metadata_process_name`, :func:`spans_from_trace`) are also what
``benchmarks/check_trace_schema.py`` validates against, so exporter and
checker cannot drift apart.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.utils.tables import format_table

logger = logging.getLogger(__name__)

#: every complete ("X") trace event must carry these fields
X_EVENT_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")

#: the quantiles a metrics diff compares (must exist in every snapshot)
DIFF_QUANTILES = ("p50", "p95", "p99")

#: default relative noise band: a quantile must exceed the baseline by this
#: fraction (1.0 = 2x) before it can count as a regression
DEFAULT_NOISE_BAND = 1.0

#: default absolute floor (seconds-scale units): quantile deltas below this
#: are scheduler noise regardless of their ratio
DEFAULT_ABS_FLOOR = 0.01

#: default minimum per-side observation count for a histogram verdict
DEFAULT_MIN_COUNT = 5


# ---------------------------------------------------------------------------
# span parsing — shared by the report commands and the CI schema checker
# ---------------------------------------------------------------------------
@dataclass
class TraceSpan:
    """One complete ("X") event of an exported trace, normalized."""

    name: str
    pid: int
    tid: int
    #: microseconds since the trace's (re-based) origin
    start_us: float
    dur_us: float
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    process: str = ""
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.dur_us / 1e6


def trace_events(document: Any) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list of a trace document (raises on bad shape)."""
    if not isinstance(document, dict):
        raise ValueError(
            f"trace document is {type(document).__name__}, expected object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document has no traceEvents list")
    return events


def metadata_process_name(event: Any) -> Optional[str]:
    """The lane name if *event* is a ``process_name`` metadata event."""
    if (isinstance(event, dict) and event.get("ph") == "M"
            and event.get("name") == "process_name"):
        name = event.get("args", {}).get("name")
        if isinstance(name, str) and name:
            return name
    return None


def process_names(events: Sequence[Any]) -> Dict[int, str]:
    """pid -> lane name, from the trace's ``process_name`` metadata events."""
    names: Dict[int, str] = {}
    for event in events:
        name = metadata_process_name(event)
        if name is not None and isinstance(event.get("pid"), int):
            names[event["pid"]] = name
    return names


def span_from_event(event: Dict[str, Any],
                    processes: Optional[Dict[int, str]] = None) -> TraceSpan:
    """Parse one complete ("X") event into a :class:`TraceSpan` (strict)."""
    missing = [key for key in X_EVENT_FIELDS if key not in event]
    if missing:
        raise ValueError(f"X event missing {', '.join(missing)}: {event!r}")
    args = dict(event.get("args", {}))
    span_id = args.pop("span_id", None)
    parent_id = args.pop("parent_id", None)
    pid = int(event["pid"])
    return TraceSpan(
        name=str(event["name"]),
        pid=pid,
        tid=int(event["tid"]),
        start_us=float(event["ts"]),
        dur_us=float(event["dur"]),
        span_id=int(span_id) if span_id is not None else None,
        parent_id=int(parent_id) if parent_id is not None else None,
        process=(processes or {}).get(pid, ""),
        args=args,
    )


def spans_from_trace(document: Any) -> List[TraceSpan]:
    """Every complete span of an exported trace document, lane names resolved."""
    events = trace_events(document)
    processes = process_names(events)
    return [span_from_event(event, processes)
            for event in events
            if isinstance(event, dict) and event.get("ph") == "X"]


# ---------------------------------------------------------------------------
# self-time attribution and critical-path extraction
# ---------------------------------------------------------------------------
def _span_key(span: TraceSpan) -> Optional[Tuple[int, int]]:
    return (span.pid, span.span_id) if span.span_id is not None else None


def _children_index(spans: Sequence[TraceSpan]) -> Dict[Tuple[int, int], List[TraceSpan]]:
    children: Dict[Tuple[int, int], List[TraceSpan]] = {}
    keys = {_span_key(span) for span in spans}
    for span in spans:
        if span.parent_id is None:
            continue
        parent_key = (span.pid, span.parent_id)
        if parent_key in keys:
            children.setdefault(parent_key, []).append(span)
    return children


def self_time_table(spans: Sequence[TraceSpan]) -> List[Dict[str, Any]]:
    """Per-span-name aggregation with child time subtracted.

    Returns rows sorted by descending self time: ``{"name", "count",
    "total_s", "self_s", "max_s"}``.  A span's self time is its duration
    minus the sum of its *direct* children's durations, clamped at zero
    (threaded children can overlap their parent, so the clamp keeps a
    multi-threaded parent from going negative).
    """
    children = _children_index(spans)
    rows: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        key = _span_key(span)
        child_s = sum(child.duration_s for child in children.get(key, ())) if key else 0.0
        row = rows.setdefault(span.name, {"name": span.name, "count": 0,
                                          "total_s": 0.0, "self_s": 0.0,
                                          "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += span.duration_s
        row["self_s"] += max(0.0, span.duration_s - child_s)
        row["max_s"] = max(row["max_s"], span.duration_s)
    return sorted(rows.values(), key=lambda row: (-row["self_s"], row["name"]))


def critical_path(spans: Sequence[TraceSpan]) -> List[TraceSpan]:
    """The slowest span chain: slowest root, then its slowest child, and so on.

    Spans whose parent is absent from the trace count as roots (a worker
    batch whose parent stayed open never shipped it).  Ties break on start
    time, then name, so the path is deterministic for equal durations.
    """
    if not spans:
        return []
    children = _children_index(spans)
    keys = {_span_key(span) for span in spans}
    roots = [span for span in spans
             if span.parent_id is None or (span.pid, span.parent_id) not in keys]
    if not roots:                       # degenerate: a parent cycle; bail out
        return []
    order = (lambda span: (-span.dur_us, span.start_us, span.name))
    node = min(roots, key=order)
    path = [node]
    while True:
        key = _span_key(node)
        branches = children.get(key) if key else None
        if not branches:
            return path
        node = min(branches, key=order)
        path.append(node)


def render_report(spans: Sequence[TraceSpan],
                  metrics: Optional[Dict[str, Any]] = None,
                  top: int = 10) -> str:
    """The ``repro obs report`` text: bottlenecks, critical path, resources."""
    blocks: List[str] = []
    rows = [[row["name"], row["count"], row["self_s"], row["total_s"], row["max_s"]]
            for row in self_time_table(spans)[:top]]
    blocks.append(format_table(
        ["span", "count", "self (s)", "total (s)", "max (s)"], rows,
        title=f"Top {min(top, len(rows))} bottlenecks by self time "
              f"({len(spans)} spans)", float_format="{:.6f}"))

    path = critical_path(spans)
    rows = []
    children = _children_index(spans)
    for span in path:
        key = _span_key(span)
        child_s = sum(child.duration_s for child in children.get(key, ())) if key else 0.0
        rows.append([span.name, span.process or "main", span.duration_s,
                     max(0.0, span.duration_s - child_s)])
    blocks.append(format_table(
        ["span", "process", "duration (s)", "self (s)"], rows,
        title="Critical path (slowest chain, root first)", float_format="{:.6f}"))

    if metrics is not None:
        resource_rows = [[name, value]
                         for name, value in sorted(metrics.get("gauges", {}).items())
                         if name.startswith("resource.")]
        samples = metrics.get("counters", {}).get("resource.samples")
        if samples is not None:
            resource_rows.append(["resource.samples", samples])
        if resource_rows:
            blocks.append(format_table(
                ["gauge", "max across processes"], resource_rows,
                title="Resource usage (max-merged per process)",
                float_format="{:.2f}"))
    return "\n\n".join(blocks)


def render_latency_table(metrics: Dict[str, Any], top: int = 10) -> str:
    """Span latency percentiles straight from a metrics snapshot.

    The metrics-only fallback of ``repro obs report``: every
    ``span.<name>.seconds`` histogram ranked by p95, no trace required.
    """
    rows = []
    for name, histogram in (metrics or {}).get("histograms", {}).items():
        if not (name.startswith("span.") and isinstance(histogram, dict)):
            continue
        rows.append([name, histogram.get("count"), histogram.get("p50"),
                     histogram.get("p95"), histogram.get("p99"),
                     histogram.get("max")])
    rows.sort(key=lambda row: -(row[3] or 0.0))
    return format_table(
        ["histogram", "count", "p50 (s)", "p95 (s)", "p99 (s)", "max (s)"],
        rows[:top], title=f"Span latency percentiles (top {top} by p95)",
        float_format="{:.6f}")


# ---------------------------------------------------------------------------
# metrics-snapshot diffing under a noise band
# ---------------------------------------------------------------------------
@dataclass
class DiffEntry:
    """One metric's verdict in a snapshot diff."""

    name: str
    kind: str                     # "counter" | "gauge" | "histogram"
    status: str                   # "ok" | "regression" | "improved" | "new" | "removed"
    detail: str = ""
    base: Optional[float] = None
    current: Optional[float] = None
    ratio: Optional[float] = None


@dataclass
class MetricsDiff:
    """Every metric's verdict between a baseline and a current snapshot."""

    entries: List[DiffEntry] = field(default_factory=list)
    band: float = DEFAULT_NOISE_BAND
    abs_floor: float = DEFAULT_ABS_FLOOR
    min_count: int = DEFAULT_MIN_COUNT

    def regressions(self) -> List[DiffEntry]:
        return [entry for entry in self.entries if entry.status == "regression"]

    def by_status(self, status: str) -> List[DiffEntry]:
        return [entry for entry in self.entries if entry.status == status]

    @property
    def ok(self) -> bool:
        return not self.regressions()

    def render(self) -> str:
        """The diff verdict as a table plus a one-line summary."""
        interesting = [entry for entry in self.entries if entry.status != "ok"]
        rows = []
        for entry in sorted(interesting,
                            key=lambda e: (e.status != "regression", e.name)):
            rows.append([
                entry.name, entry.kind, entry.status.upper(),
                "-" if entry.base is None else f"{entry.base:.6g}",
                "-" if entry.current is None else f"{entry.current:.6g}",
                "-" if entry.ratio is None else f"{entry.ratio:.2f}x",
                entry.detail])
        table = format_table(
            ["metric", "kind", "verdict", "base", "current", "ratio", "detail"],
            rows, title=(f"Snapshot diff — noise band +{self.band * 100:.0f}% "
                         f"and >{self.abs_floor:g} absolute, "
                         f"min {self.min_count} observations"))
        counts = {"regression": len(self.regressions()),
                  "improved": len(self.by_status("improved")),
                  "new": len(self.by_status("new")),
                  "removed": len(self.by_status("removed"))}
        compared = len(self.entries)
        summary = (f"{compared} metrics compared: "
                   + ", ".join(f"{count} {status}" for status, count in counts.items()))
        verdict = ("WITHIN NOISE BAND" if self.ok
                   else f"REGRESSION in {counts['regression']} metric(s)")
        return f"{table}\n\n{summary}\n{verdict}"


def _section(document: Dict[str, Any], name: str) -> Dict[str, Any]:
    section = document.get(name, {})
    return section if isinstance(section, dict) else {}


def _diff_histogram(name: str, base: Dict[str, Any], current: Dict[str, Any],
                    band: float, abs_floor: float, min_count: int,
                    quantiles: Sequence[str]) -> DiffEntry:
    base_count = int(base.get("count") or 0)
    current_count = int(current.get("count") or 0)
    if min(base_count, current_count) < min_count:
        return DiffEntry(name=name, kind="histogram", status="ok",
                         detail=f"too few observations "
                                f"({base_count} vs {current_count})")
    worst: Optional[DiffEntry] = None
    for quantile in quantiles:
        base_q, current_q = base.get(quantile), current.get(quantile)
        if not isinstance(base_q, (int, float)) or not isinstance(current_q, (int, float)):
            continue
        ratio = (current_q / base_q) if base_q > 0 else float("inf")
        delta = current_q - base_q
        if delta > abs_floor and current_q > base_q * (1.0 + band):
            status = "regression"
        elif -delta > abs_floor and base_q > current_q * (1.0 + band):
            status = "improved"
        else:
            status = "ok"
        entry = DiffEntry(name=name, kind="histogram", status=status,
                          base=float(base_q), current=float(current_q),
                          ratio=ratio,
                          detail=f"{quantile} {base_q:.6g} -> {current_q:.6g}")
        # a regression on any quantile wins; otherwise keep the largest move
        if worst is None or (status == "regression" and worst.status != "regression"):
            worst = entry
        elif (status == worst.status and worst.ratio is not None
              and entry.ratio is not None and entry.ratio > worst.ratio):
            worst = entry
    return worst or DiffEntry(name=name, kind="histogram", status="ok",
                              detail="no comparable quantiles")


def diff_metrics(base_document: Dict[str, Any],
                 current_document: Dict[str, Any], *,
                 band: float = DEFAULT_NOISE_BAND,
                 abs_floor: float = DEFAULT_ABS_FLOOR,
                 min_count: int = DEFAULT_MIN_COUNT,
                 quantiles: Sequence[str] = DIFF_QUANTILES) -> MetricsDiff:
    """Compare two metrics snapshots under an explicit noise model.

    Histograms regress when any compared quantile exceeds the baseline by
    more than ``band`` (relative) *and* ``abs_floor`` (absolute), with both
    sides having at least ``min_count`` observations; the symmetric
    improvement is reported as ``improved``.  Counters and gauges are
    informational — their deltas never fail a diff, since cache hit counts
    legitimately differ between a cold and a warm run.  A metric present in
    only one snapshot is ``new`` or ``removed``, never an error.
    """
    diff = MetricsDiff(band=band, abs_floor=abs_floor, min_count=min_count)
    for kind in ("counters", "gauges", "histograms"):
        base_section = _section(base_document, kind)
        current_section = _section(current_document, kind)
        singular = kind[:-1]
        for name in sorted(set(base_section) | set(current_section)):
            in_base, in_current = name in base_section, name in current_section
            if in_base and not in_current:
                diff.entries.append(DiffEntry(
                    name=name, kind=singular, status="removed",
                    detail="only in the baseline snapshot"))
                continue
            if in_current and not in_base:
                diff.entries.append(DiffEntry(
                    name=name, kind=singular, status="new",
                    detail="no baseline entry"))
                continue
            base_value, current_value = base_section[name], current_section[name]
            if kind == "histograms":
                diff.entries.append(_diff_histogram(
                    name, base_value or {}, current_value or {},
                    band, abs_floor, min_count, quantiles))
            else:
                delta = float(current_value) - float(base_value)
                diff.entries.append(DiffEntry(
                    name=name, kind=singular, status="ok",
                    base=float(base_value), current=float(current_value),
                    detail=f"delta {delta:+g}"))
    return diff
