"""IPv4 addressing helpers for the traffic-analysis application.

Queries in the benchmark reason about address prefixes ("Assign a unique
color for each /16 IP address prefix", "Add a label to nodes with address
prefix 15.76"), so the generator and the golden answers share these helpers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.utils.rng import DeterministicRng
from repro.utils.validation import require


def _octets(address: str) -> List[int]:
    parts = address.split(".")
    require(len(parts) == 4, f"{address!r} is not a dotted-quad IPv4 address")
    octets = []
    for part in parts:
        require(part.isdigit(), f"{address!r} contains a non-numeric octet")
        value = int(part)
        require(0 <= value <= 255, f"octet {value} out of range in {address!r}")
        octets.append(value)
    return octets


def prefix_of(address: str, prefix_length: int) -> str:
    """Return the dotted prefix of *address* with *prefix_length* bits.

    Only multiples of 8 are supported (8, 16, 24), which is what the
    benchmark queries use; the result keeps only the leading octets
    ("10.24.3.7" with 16 bits -> "10.24").
    """
    require(prefix_length in (8, 16, 24, 32),
            f"prefix_length must be one of 8/16/24/32, got {prefix_length}")
    octets = _octets(address)
    keep = prefix_length // 8
    return ".".join(str(o) for o in octets[:keep])


def prefix16(address: str) -> str:
    """The /16 prefix of an address ("10.24.3.7" -> "10.24")."""
    return prefix_of(address, 16)


def prefix24(address: str) -> str:
    """The /24 prefix of an address ("10.24.3.7" -> "10.24.3")."""
    return prefix_of(address, 24)


def random_address(rng: DeterministicRng, first_octet: Optional[int] = None,
                   second_octet: Optional[int] = None) -> str:
    """Draw a syntactically valid IPv4 address from *rng*."""
    first = first_octet if first_octet is not None else rng.randint(1, 223)
    second = second_octet if second_octet is not None else rng.randint(0, 255)
    return f"{first}.{second}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"


class AddressAllocator:
    """Allocate unique addresses clustered into a configurable number of /16s.

    The benchmark's medium-complexity query groups nodes by /16 prefix, so
    synthetic graphs need several distinct prefixes with several hosts each.
    One prefix is pinned to ``15.76`` because the easy-complexity example
    query labels nodes with that prefix.
    """

    PINNED_PREFIX = (15, 76)

    def __init__(self, rng: DeterministicRng, prefix_count: int = 4) -> None:
        require(prefix_count >= 1, "prefix_count must be at least 1")
        self._rng = rng.fork("addresses")
        self._allocated: set = set()
        self._prefixes: List[tuple] = [self.PINNED_PREFIX]
        while len(self._prefixes) < prefix_count:
            candidate = (self._rng.randint(1, 223), self._rng.randint(0, 255))
            if candidate not in self._prefixes:
                self._prefixes.append(candidate)

    @property
    def prefixes(self) -> List[str]:
        """The /16 prefixes managed by this allocator, as dotted strings."""
        return [f"{a}.{b}" for a, b in self._prefixes]

    def allocate(self) -> str:
        """Return a previously unallocated address in one of the prefixes."""
        for _ in range(100_000):
            first, second = self._prefixes[self._rng.zipf_like(len(self._prefixes), alpha=0.8)]
            address = random_address(self._rng, first, second)
            if address not in self._allocated:
                self._allocated.add(address)
                return address
        raise RuntimeError("address space exhausted")

    def allocate_many(self, count: int) -> List[str]:
        """Allocate *count* distinct addresses."""
        return [self.allocate() for _ in range(count)]
