"""Application wrapper for the traffic-analysis workload."""

from __future__ import annotations

from typing import Optional

from repro.core.application import ApplicationContext, NetworkApplication
from repro.graph import PropertyGraph
from repro.traffic.generator import CommunicationGraphConfig, generate_communication_graph


class TrafficAnalysisApplication(NetworkApplication):
    """Network traffic analysis over a communication graph.

    The wrapper exposes the communication graph in every backend
    representation and describes its schema (addresses, device types, byte /
    connection / packet weights) for the prompt generator.
    """

    name = "traffic_analysis"

    def __init__(self, graph: Optional[PropertyGraph] = None,
                 config: Optional[CommunicationGraphConfig] = None) -> None:
        if graph is None:
            graph = generate_communication_graph(config)
        super().__init__(graph)

    @classmethod
    def with_size(cls, node_count: int, edge_count: int, seed: int = 7) -> "TrafficAnalysisApplication":
        """Convenience constructor used by the cost/scalability sweep."""
        config = CommunicationGraphConfig(node_count=node_count, edge_count=edge_count,
                                          seed=seed)
        return cls(config=config)

    @classmethod
    def from_scenario(cls, spec_or_name, at_time: Optional[float] = None) -> "TrafficAnalysisApplication":
        """Build the application from a scenario spec or registered name.

        The scenario is replayed through the event engine and the resulting
        graph (final state, or the state at *at_time*) is annotated with the
        traffic schema (addresses, device types, flow counters).
        """
        from repro.scenarios.overlay import traffic_application_from_scenario

        return traffic_application_from_scenario(spec_or_name, at_time=at_time,
                                                 application_cls=cls)

    def context(self) -> ApplicationContext:
        return ApplicationContext(
            application_name="Network traffic analysis",
            application_description=(
                "The network state is a communication graph (traffic dispersion "
                "graph). Each node is a network endpoint; each directed edge "
                "records observed communication from the source endpoint to the "
                "destination endpoint."),
            graph_description=self.graph_summary(),
            node_schema={
                "address": "IPv4 address of the endpoint (dotted quad string)",
                "type": "device type: host, router, switch, or server",
                "name": "human-readable node name",
            },
            edge_schema={
                "bytes": "total bytes transferred over the edge",
                "connections": "number of connections observed on the edge",
                "packets": "total packets transferred over the edge",
            },
            terminology={
                "/16 prefix": "the first two octets of an IPv4 address, e.g. '15.76'",
                "label": "node attributes may be added to annotate nodes, "
                          "e.g. graph.nodes[n]['app'] = 'production'",
                "color": "a node attribute named 'color' used for visualization",
            },
            example_queries=[
                "Add a label app:production to nodes with address prefix 15.76",
                "Assign a unique color for each /16 IP address prefix.",
                "Calculate total byte weight on each node, cluster them into 5 groups.",
            ],
        )
