"""Synthetic communication-graph and flow-log generation.

The paper evaluates the traffic-analysis application on synthetic
communication graphs "with varying numbers of nodes and edges", where every
edge carries random byte, connection, and packet weights.  Graph size is the
experimental knob for the cost/scalability analysis (Figure 4), so the
generator takes explicit node and edge targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph import PropertyGraph
from repro.traffic.addressing import AddressAllocator
from repro.utils.rng import DeterministicRng
from repro.utils.validation import require


@dataclass
class CommunicationGraphConfig:
    """Parameters of the synthetic communication graph generator."""

    node_count: int = 40
    edge_count: int = 40
    prefix_count: int = 4
    min_bytes: int = 100
    max_bytes: int = 1_000_000
    min_connections: int = 1
    max_connections: int = 500
    min_packets: int = 1
    max_packets: int = 10_000
    device_types: List[str] = field(default_factory=lambda: ["host", "router", "switch", "server"])
    seed: int = 7

    def validate(self) -> None:
        require(self.node_count >= 2, "node_count must be at least 2")
        require(self.edge_count >= 1, "edge_count must be at least 1")
        max_edges = self.node_count * (self.node_count - 1)
        require(self.edge_count <= max_edges,
                f"edge_count {self.edge_count} exceeds the maximum {max_edges} "
                f"for {self.node_count} nodes")
        require(self.min_bytes <= self.max_bytes, "min_bytes must not exceed max_bytes")
        require(self.min_connections <= self.max_connections,
                "min_connections must not exceed max_connections")
        require(self.min_packets <= self.max_packets,
                "min_packets must not exceed max_packets")


@dataclass
class FlowRecord:
    """One synthetic flow observation (source, destination, volume counters)."""

    source: str
    destination: str
    bytes: int
    packets: int
    connections: int = 1
    protocol: str = "tcp"

    def as_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "destination": self.destination,
            "bytes": self.bytes,
            "packets": self.packets,
            "connections": self.connections,
            "protocol": self.protocol,
        }


def generate_communication_graph(config: Optional[CommunicationGraphConfig] = None,
                                 **overrides) -> PropertyGraph:
    """Generate a synthetic communication graph.

    Nodes carry ``address`` (IPv4), ``type`` (device type) and ``name``
    attributes; directed edges carry ``bytes``, ``connections`` and
    ``packets`` weights.  Generation is fully deterministic in
    ``config.seed``.
    """
    if config is None:
        config = CommunicationGraphConfig()
    if overrides:
        config = CommunicationGraphConfig(**{**config.__dict__, **overrides})
    config.validate()

    rng = DeterministicRng(config.seed, "communication-graph")
    allocator = AddressAllocator(rng, prefix_count=config.prefix_count)
    addresses = allocator.allocate_many(config.node_count)

    graph = PropertyGraph(name=f"tdg-{config.node_count}n-{config.edge_count}e",
                          directed=True)
    graph.graph_attributes["application"] = "traffic_analysis"
    graph.graph_attributes["seed"] = config.seed

    type_rng = rng.fork("types")
    for index, address in enumerate(addresses):
        graph.add_node(
            f"n{index}",
            address=address,
            type=type_rng.choice(config.device_types),
            name=f"node-{index}",
        )

    node_ids = graph.nodes()
    weight_rng = rng.fork("weights")
    pair_rng = rng.fork("pairs")
    used_pairs = set()
    attempts = 0
    while len(used_pairs) < config.edge_count and attempts < config.edge_count * 50:
        attempts += 1
        source = node_ids[pair_rng.zipf_like(len(node_ids), alpha=1.1)]
        target = pair_rng.choice(node_ids)
        if source == target or (source, target) in used_pairs:
            continue
        used_pairs.add((source, target))
        graph.add_edge(
            source,
            target,
            bytes=weight_rng.randint(config.min_bytes, config.max_bytes),
            connections=weight_rng.randint(config.min_connections, config.max_connections),
            packets=weight_rng.randint(config.min_packets, config.max_packets),
        )
    # If the Zipf sampler could not find enough distinct pairs (tiny graphs),
    # fall back to a deterministic sweep so the edge target is always met.
    if len(used_pairs) < config.edge_count:
        for source in node_ids:
            for target in node_ids:
                if len(used_pairs) >= config.edge_count:
                    break
                if source == target or (source, target) in used_pairs:
                    continue
                used_pairs.add((source, target))
                graph.add_edge(
                    source,
                    target,
                    bytes=weight_rng.randint(config.min_bytes, config.max_bytes),
                    connections=weight_rng.randint(config.min_connections, config.max_connections),
                    packets=weight_rng.randint(config.min_packets, config.max_packets),
                )
    return graph


def generate_flow_log(config: Optional[CommunicationGraphConfig] = None,
                      flows_per_edge: int = 3, **overrides) -> List[FlowRecord]:
    """Generate a synthetic flow log consistent with a communication graph.

    Each graph edge is split into ``flows_per_edge`` flow records whose byte
    and packet counters sum back to the edge weights, so
    :func:`graph_from_flows` of the log reproduces the graph.
    """
    require(flows_per_edge >= 1, "flows_per_edge must be at least 1")
    graph = generate_communication_graph(config, **overrides)
    seed = graph.graph_attributes.get("seed", 0)
    rng = DeterministicRng(seed, "flow-log")
    records: List[FlowRecord] = []
    for source, target, attrs in graph.edges(data=True):
        source_address = graph.node_attributes(source)["address"]
        target_address = graph.node_attributes(target)["address"]
        byte_parts = rng.partition(attrs["bytes"], flows_per_edge)
        packet_parts = rng.partition(attrs["packets"], flows_per_edge)
        connection_parts = rng.partition(attrs["connections"], flows_per_edge)
        for bytes_part, packets_part, connections_part in zip(byte_parts, packet_parts,
                                                              connection_parts):
            records.append(FlowRecord(
                source=source_address,
                destination=target_address,
                bytes=bytes_part,
                packets=packets_part,
                connections=connections_part,
                protocol=rng.choice(["tcp", "udp"]),
            ))
    return records


def graph_from_flows(flows: List[FlowRecord], name: str = "tdg-from-flows") -> PropertyGraph:
    """Aggregate a flow log into a traffic dispersion graph.

    Nodes are addresses observed as a source or destination; edge weights are
    the sums of the per-flow counters.  This is the classic TDG construction
    from the paper's traffic-analysis references.
    """
    graph = PropertyGraph(name=name, directed=True)
    graph.graph_attributes["application"] = "traffic_analysis"
    address_to_node: Dict[str, str] = {}

    def node_for(address: str) -> str:
        if address not in address_to_node:
            node_id = f"n{len(address_to_node)}"
            address_to_node[address] = node_id
            graph.add_node(node_id, address=address, type="host", name=f"node-{len(address_to_node) - 1}")
        return address_to_node[address]

    for flow in flows:
        source = node_for(flow.source)
        target = node_for(flow.destination)
        if graph.has_edge(source, target):
            attrs = graph.edge_attributes(source, target)
            attrs["bytes"] += flow.bytes
            attrs["packets"] += flow.packets
            attrs["connections"] += flow.connections
        else:
            graph.add_edge(source, target, bytes=flow.bytes, packets=flow.packets,
                           connections=flow.connections)
    return graph
