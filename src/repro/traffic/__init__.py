"""Network traffic analysis application (paper Section 2.1, first workload).

Traffic dispersion graphs (TDGs) / communication graphs: nodes are network
endpoints identified by IP address, edges are observed communications
annotated with byte, connection, and packet counts.  The package provides

* IP addressing helpers (prefix extraction, deterministic address pools),
* a synthetic flow-log generator and the TDG builder that aggregates flows
  into a communication graph (the paper evaluates synthetic graphs whose node
  and edge counts are controlled, so the strawman baseline can be sized
  against the LLM token limit), and
* the :class:`TrafficAnalysisApplication` wrapper that plugs the graph into
  the Figure-2 framework.
"""

from repro.traffic.addressing import (
    AddressAllocator,
    prefix_of,
    prefix16,
    prefix24,
    random_address,
)
from repro.traffic.generator import (
    CommunicationGraphConfig,
    FlowRecord,
    generate_communication_graph,
    generate_flow_log,
    graph_from_flows,
)
from repro.traffic.application import TrafficAnalysisApplication

__all__ = [
    "AddressAllocator",
    "prefix_of",
    "prefix16",
    "prefix24",
    "random_address",
    "CommunicationGraphConfig",
    "FlowRecord",
    "generate_communication_graph",
    "generate_flow_log",
    "graph_from_flows",
    "TrafficAnalysisApplication",
]
