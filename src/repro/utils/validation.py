"""Lightweight argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Any, Iterable, Type


class ValidationError(ValueError):
    """Raised when a caller passes an argument the library cannot accept."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition* holds."""
    if not condition:
        raise ValidationError(message)


def require_type(value: Any, expected: Type, name: str) -> None:
    """Require that *value* is an instance of *expected*."""
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )


def require_in(value: Any, options: Iterable[Any], name: str) -> None:
    """Require that *value* is one of *options*."""
    options = list(options)
    if value not in options:
        raise ValidationError(f"{name} must be one of {options!r}, got {value!r}")


def require_positive(value: float, name: str, allow_zero: bool = False) -> None:
    """Require that a numeric *value* is positive (or non-negative)."""
    if allow_zero:
        if value < 0:
            raise ValidationError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
