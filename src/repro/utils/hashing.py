"""Stable hashing helpers.

Python's built-in ``hash`` is salted per process, which makes it unusable for
reproducible experiments.  Everything in this repository that needs a
"random but repeatable" decision (fault injection in the LLM simulator,
synthetic topology generation, benchmark shuffling) routes through the SHA-256
based helpers below so results are identical across runs and machines.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def _canonical_bytes(value: Any) -> bytes:
    """Serialize *value* into a canonical byte string.

    Dictionaries are sorted by key, containers are serialized recursively, and
    all scalars go through ``json`` so that, e.g., ``1`` and ``1.0`` remain
    distinguishable via their type tag.
    """
    try:
        payload = json.dumps(value, sort_keys=True, default=str)
    except (TypeError, ValueError):
        payload = repr(value)
    return payload.encode("utf-8")


def stable_hash(*parts: Any, bits: int = 64) -> int:
    """Return a deterministic non-negative integer hash of *parts*.

    Parameters
    ----------
    parts:
        Any JSON-serializable (or repr-able) values; order matters.
    bits:
        Width of the returned integer (default 64).
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(_canonical_bytes(part))
        hasher.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    digest = hasher.digest()
    value = int.from_bytes(digest, "big")
    return value % (1 << bits)


def stable_unit_interval(*parts: Any) -> float:
    """Map *parts* deterministically onto a float in ``[0, 1)``.

    The mapping is uniform over the 53-bit mantissa range, which is plenty of
    resolution for probability thresholding in the fault-injection model.
    """
    return stable_hash(*parts, bits=53) / float(1 << 53)


def stable_choice_index(num_options: int, *parts: Any) -> int:
    """Deterministically pick an index in ``range(num_options)`` from *parts*."""
    if num_options <= 0:
        raise ValueError("num_options must be positive")
    return stable_hash(*parts) % num_options
