"""A small deterministic random-number generator wrapper.

``random.Random`` is already deterministic given a seed, but experiments in
this repository need *named sub-streams* (for example: the topology generator
and the traffic-weight sampler must not perturb one another when one of them
draws an extra value).  ``DeterministicRng`` provides cheap forkable
sub-streams keyed by strings.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

from repro.utils.hashing import stable_hash

T = TypeVar("T")


class DeterministicRng:
    """Seeded RNG with named, independent sub-streams."""

    def __init__(self, seed: int = 0, namespace: str = "root") -> None:
        self._seed = int(seed)
        self._namespace = namespace
        self._random = random.Random(stable_hash(seed, namespace))

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def namespace(self) -> str:
        return self._namespace

    def fork(self, name: str) -> "DeterministicRng":
        """Return an independent RNG for the sub-stream *name*."""
        return DeterministicRng(self._seed, f"{self._namespace}/{name}")

    # -- thin wrappers over random.Random -------------------------------
    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def expovariate(self, lambd: float) -> float:
        return self._random.expovariate(lambd)

    def choice(self, options: Sequence[T]) -> T:
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(options)

    def choices(self, options: Sequence[T], weights: Optional[Sequence[float]] = None,
                k: int = 1) -> List[T]:
        return self._random.choices(options, weights=weights, k=k)

    def sample(self, options: Sequence[T], k: int) -> List[T]:
        return self._random.sample(options, k)

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a shuffled *copy* of items (the input list is untouched)."""
        copied = list(items)
        self._random.shuffle(copied)
        return copied

    def zipf_like(self, n: int, alpha: float = 1.2) -> int:
        """Draw an index in ``[0, n)`` with a Zipf-like skew.

        Used by the traffic generator to produce heavy-hitter talkers, the way
        real traffic dispersion graphs look.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / ((i + 1) ** alpha) for i in range(n)]
        total = sum(weights)
        threshold = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if acc >= threshold:
                return i
        return n - 1

    def partition(self, total: int, parts: int) -> List[int]:
        """Split integer *total* into *parts* non-negative integers that sum to it."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        if total < 0:
            raise ValueError("total must be non-negative")
        cuts = sorted(self._random.randint(0, total) for _ in range(parts - 1))
        bounds = [0] + cuts + [total]
        return [bounds[i + 1] - bounds[i] for i in range(parts)]
