"""Shared utilities: deterministic RNG, hashing, table rendering, validation.

These helpers are deliberately dependency-free so that every other subsystem
(graph substrate, SQL engine, LLM simulator, benchmark runner) can rely on
them without import cycles.
"""

from repro.utils.hashing import stable_hash, stable_unit_interval
from repro.utils.rng import DeterministicRng
from repro.utils.tables import format_table, format_markdown_table
from repro.utils.validation import (
    ValidationError,
    require,
    require_type,
    require_in,
    require_positive,
)

__all__ = [
    "DeterministicRng",
    "stable_hash",
    "stable_unit_interval",
    "format_table",
    "format_markdown_table",
    "ValidationError",
    "require",
    "require_type",
    "require_in",
    "require_positive",
]
