"""Plain-text and Markdown table rendering for benchmark reports.

The benchmark harness regenerates the paper's tables; these helpers render
them in the same row/column layout as the paper so a reader can compare them
side by side.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def _stringify(cell: Any, float_format: str = "{:.2f}") -> str:
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: Optional[str] = None, float_format: str = "{:.2f}") -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [[_stringify(c, float_format) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cells[i].ljust(widths[i]) if i < len(widths) else cells[i]
                  for i in range(len(cells))]
        return "  ".join(padded).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(str_headers))
    lines.append(render_row(["-" * w for w in widths]))
    for row in str_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                          float_format: str = "{:.2f}") -> str:
    """Render a GitHub-flavored Markdown table."""
    str_headers = [str(h) for h in headers]
    lines = ["| " + " | ".join(str_headers) + " |",
             "|" + "|".join(["---"] * len(str_headers)) + "|"]
    for row in rows:
        cells = [_stringify(c, float_format) for c in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_cdf(values: Sequence[float], num_points: int = 20) -> List[tuple]:
    """Return ``(value, cumulative_fraction)`` points of the empirical CDF."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points = []
    step = max(1, n // num_points)
    for i in range(0, n, step):
        points.append((ordered[i], (i + 1) / n))
    if points[-1][0] != ordered[-1]:
        points.append((ordered[-1], 1.0))
    return points
