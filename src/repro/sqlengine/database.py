"""Tables, databases and result sets of the in-memory SQL engine."""

from __future__ import annotations

import copy as _copy
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.sqlengine.errors import SqlExecutionError

Row = Dict[str, Any]


class Table:
    """A named table: an ordered list of rows sharing a column schema."""

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Optional[Iterable[Row]] = None) -> None:
        self.name = name
        self.columns: List[str] = [str(c) for c in columns]
        self.rows: List[Row] = []
        if rows:
            for row in rows:
                self.insert(row)

    def insert(self, row: Row) -> None:
        """Insert a row; unknown columns are rejected, missing ones become NULL."""
        unknown = [key for key in row if key not in self.columns]
        if unknown:
            raise SqlExecutionError(
                f"table {self.name!r} has no columns {unknown!r}; schema is {self.columns}"
            )
        self.rows.append({column: row.get(column) for column in self.columns})

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def copy(self) -> "Table":
        return Table(self.name, list(self.columns), _copy.deepcopy(self.rows))

    def column_values(self, column: str) -> List[Any]:
        if column not in self.columns:
            raise SqlExecutionError(f"table {self.name!r} has no column {column!r}")
        return [row.get(column) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={len(self.rows)}, columns={self.columns})"


class ResultSet:
    """The outcome of a ``SELECT``: ordered column names plus row dictionaries."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Row]) -> None:
        self.columns: List[str] = list(columns)
        self.rows: List[Row] = [dict(row) for row in rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    __hash__ = None

    def scalar(self) -> Any:
        """Return the single value of a 1x1 result (e.g. ``SELECT COUNT(*) ...``)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][self.columns[0]]

    def column(self, name: Optional[str] = None) -> List[Any]:
        """Return one column as a list (the first column when *name* is omitted)."""
        if not self.columns:
            return []
        key = name if name is not None else self.columns[0]
        if key not in self.columns:
            raise SqlExecutionError(f"result has no column {key!r}; columns: {self.columns}")
        return [row[key] for row in self.rows]

    def to_records(self) -> List[Row]:
        return [dict(row) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


class Database:
    """A collection of named tables plus the statement entry point."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[str],
                     rows: Optional[Iterable[Row]] = None) -> Table:
        if name in self._tables:
            raise SqlExecutionError(f"table {name!r} already exists")
        table = Table(name, columns, rows)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SqlExecutionError(f"cannot drop unknown table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise SqlExecutionError(
                f"unknown table {name!r}; available tables: {sorted(self._tables)}"
            )
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def copy(self) -> "Database":
        duplicate = Database(self.name)
        for name, table in self._tables.items():
            duplicate._tables[name] = table.copy()
        return duplicate

    def execute(self, sql: str) -> Optional[ResultSet]:
        """Parse and execute one SQL statement against this database."""
        from repro.sqlengine.executor import execute_sql  # local import avoids cycle

        return execute_sql(self, sql)

    def schema_description(self) -> str:
        """Human-readable schema summary used by the prompt generators."""
        lines = []
        for name in self.table_names():
            table = self._tables[name]
            lines.append(f"TABLE {name} ({', '.join(table.columns)}) -- {len(table)} rows")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, tables={self.table_names()})"
