"""An in-memory SQL engine.

The paper's third code-generation backend represents the network as two
relational tables (``nodes`` and ``edges``) and lets the LLM generate SQL.
This package provides a self-contained SQL engine so that the generated SQL
genuinely executes: a lexer, a recursive-descent parser producing a small AST,
an expression evaluator, and an executor supporting the statement subset the
benchmark queries need:

* ``SELECT`` with projection, expressions, aggregates (COUNT/SUM/AVG/MIN/MAX),
  ``DISTINCT``, ``JOIN ... ON``, ``WHERE``, ``GROUP BY``, ``HAVING``,
  ``ORDER BY ... ASC|DESC``, ``LIMIT``;
* ``INSERT INTO ... VALUES``;
* ``UPDATE ... SET ... WHERE``;
* ``DELETE FROM ... WHERE``.

The engine is deliberately strict: unknown columns, unknown tables, and type
errors raise :class:`SqlError`, which the benchmark's error classifier maps to
the paper's error taxonomy.
"""

from repro.sqlengine.database import Database, Table, ResultSet
from repro.sqlengine.errors import SqlError, SqlSyntaxError, SqlExecutionError
from repro.sqlengine.executor import execute_sql
from repro.sqlengine.lexer import tokenize, Token, TokenType
from repro.sqlengine.parser import parse_statement

__all__ = [
    "Database",
    "Table",
    "ResultSet",
    "SqlError",
    "SqlSyntaxError",
    "SqlExecutionError",
    "execute_sql",
    "tokenize",
    "Token",
    "TokenType",
    "parse_statement",
]
