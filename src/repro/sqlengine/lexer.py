"""Tokenizer for the in-memory SQL engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List

from repro.sqlengine.errors import SqlSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    STAR = "star"
    END = "end"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "ASC", "DESC", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
    "JOIN", "INNER", "LEFT", "ON", "DISTINCT", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "COUNT", "SUM", "AVG", "MIN", "MAX",
    "TRUE", "FALSE", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END",
}

_TWO_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPERATORS = "=<>+-/%"


@dataclass
class Token:
    """A single lexical token."""

    type: TokenType
    value: Any
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r})"


def tokenize(sql: str) -> List[Token]:
    """Tokenize *sql* into a list of :class:`Token`, ending with an END token."""
    tokens: List[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch in "(),.;":
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        if sql[i:i + 2] in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, sql[i:i + 2], i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in ("'", '"'):
            end = i + 1
            buffer = []
            while end < length:
                if sql[end] == ch:
                    # doubled quote is an escaped quote
                    if end + 1 < length and sql[end + 1] == ch:
                        buffer.append(ch)
                        end += 2
                        continue
                    break
                buffer.append(sql[end])
                end += 1
            if end >= length:
                raise SqlSyntaxError(f"unterminated string literal starting at {i}")
            tokens.append(Token(TokenType.STRING, "".join(buffer), i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            end = i
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            literal = sql[i:end]
            value = float(literal) if seen_dot else int(literal)
            tokens.append(Token(TokenType.NUMBER, value, i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < length and (sql[end].isalnum() or sql[end] in "_$"):
                end += 1
            word = sql[i:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = end
            continue
        if ch == "`":
            end = sql.find("`", i + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token(TokenType.IDENTIFIER, sql[i + 1:end], i))
            i = end + 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.END, None, length))
    return tokens
