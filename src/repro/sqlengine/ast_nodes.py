"""AST node definitions for the in-memory SQL engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
class Expression:
    """Base class for all expression nodes."""


@dataclass
class Literal(Expression):
    value: Any


@dataclass
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    table: Optional[str] = None


@dataclass
class UnaryOp(Expression):
    operator: str  # NOT, -, +
    operand: Expression


@dataclass
class BinaryOp(Expression):
    operator: str  # =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, LIKE, ||
    left: Expression
    right: Expression


@dataclass
class InList(Expression):
    operand: Expression
    options: List[Expression]
    negated: bool = False


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class FunctionCall(Expression):
    """Aggregate or scalar function call (COUNT, SUM, AVG, MIN, MAX, ...)."""

    name: str
    arguments: List[Expression]
    distinct: bool = False
    is_star: bool = False  # COUNT(*)


@dataclass
class CaseExpression(Expression):
    """``CASE WHEN cond THEN value ... ELSE value END``."""

    branches: List[tuple]  # list of (condition, value) expression pairs
    default: Optional[Expression] = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
class Statement:
    """Base class for all statement nodes."""


@dataclass
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


@dataclass
class JoinClause:
    table: TableRef
    condition: Expression
    join_type: str = "INNER"  # INNER or LEFT


@dataclass
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass
class SelectStatement(Statement):
    items: List[SelectItem]
    table: Optional[TableRef] = None
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


@dataclass
class InsertStatement(Statement):
    table: str
    columns: List[str]
    rows: List[List[Expression]]


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: List[tuple]  # (column_name, expression)
    where: Optional[Expression] = None


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Optional[Expression] = None
