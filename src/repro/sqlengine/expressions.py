"""Expression evaluation for the in-memory SQL engine."""

from __future__ import annotations

import re
from typing import Any, Dict, List

from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Star,
    UnaryOp,
)
from repro.sqlengine.errors import SqlExecutionError

Row = Dict[str, Any]


def resolve_column(row: Row, ref: ColumnRef) -> Any:
    """Look up a column reference in a (possibly table-qualified) row."""
    if ref.table is not None:
        qualified = f"{ref.table}.{ref.name}"
        if qualified in row:
            return row[qualified]
        raise SqlExecutionError(f"unknown column {qualified!r}")
    if ref.name in row:
        return row[ref.name]
    # fall back: a single unambiguous qualified match
    matches = [key for key in row if key.endswith(f".{ref.name}")]
    if len(matches) == 1:
        return row[matches[0]]
    if len(matches) > 1:
        raise SqlExecutionError(f"ambiguous column {ref.name!r}: {matches}")
    raise SqlExecutionError(f"unknown column {ref.name!r}; row has {sorted(row)}")


def _like_to_regex(pattern: str) -> str:
    pieces = []
    for char in pattern:
        if char == "%":
            pieces.append(".*")
        elif char == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(char))
    return "^" + "".join(pieces) + "$"


def _numeric(value: Any, context: str) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    raise SqlExecutionError(f"{context} requires a numeric value, got {value!r}")


def evaluate(expression: Expression, row: Row) -> Any:
    """Evaluate a scalar expression against one row."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return resolve_column(row, expression)
    if isinstance(expression, Star):
        raise SqlExecutionError("'*' is only valid in SELECT lists and COUNT(*)")
    if isinstance(expression, UnaryOp):
        operand = evaluate(expression.operand, row)
        if expression.operator == "NOT":
            return not bool(operand)
        if expression.operator == "-":
            return -_numeric(operand, "unary minus")
        if expression.operator == "+":
            return _numeric(operand, "unary plus")
        raise SqlExecutionError(f"unknown unary operator {expression.operator!r}")
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, row)
    if isinstance(expression, InList):
        value = evaluate(expression.operand, row)
        options = [evaluate(option, row) for option in expression.options]
        result = value in options
        return not result if expression.negated else result
    if isinstance(expression, IsNull):
        value = evaluate(expression.operand, row)
        result = value is None
        return not result if expression.negated else result
    if isinstance(expression, Between):
        value = evaluate(expression.operand, row)
        low = evaluate(expression.low, row)
        high = evaluate(expression.high, row)
        result = low <= value <= high
        return not result if expression.negated else result
    if isinstance(expression, CaseExpression):
        for condition, value in expression.branches:
            if bool(evaluate(condition, row)):
                return evaluate(value, row)
        return evaluate(expression.default, row) if expression.default is not None else None
    if isinstance(expression, FunctionCall):
        raise SqlExecutionError(
            f"aggregate function {expression.name} used outside of an aggregation context"
        )
    raise SqlExecutionError(f"cannot evaluate expression node {type(expression).__name__}")


def _evaluate_binary(node: BinaryOp, row: Row) -> Any:
    operator = node.operator
    if operator == "AND":
        return bool(evaluate(node.left, row)) and bool(evaluate(node.right, row))
    if operator == "OR":
        return bool(evaluate(node.left, row)) or bool(evaluate(node.right, row))

    left = evaluate(node.left, row)
    right = evaluate(node.right, row)

    if operator == "=":
        return left == right
    if operator == "<>":
        return left != right
    if operator in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return False
        try:
            if operator == "<":
                return left < right
            if operator == "<=":
                return left <= right
            if operator == ">":
                return left > right
            return left >= right
        except TypeError as exc:
            raise SqlExecutionError(f"cannot compare {left!r} and {right!r}") from exc
    if operator == "LIKE":
        if left is None or right is None:
            return False
        return re.match(_like_to_regex(str(right)), str(left)) is not None
    if operator == "||":
        return f"{'' if left is None else left}{'' if right is None else right}"
    if operator in ("+", "-", "*", "/", "%"):
        left_num = _numeric(left, f"operator {operator}")
        right_num = _numeric(right, f"operator {operator}")
        if operator == "+":
            return left_num + right_num
        if operator == "-":
            return left_num - right_num
        if operator == "*":
            return left_num * right_num
        if operator == "/":
            if right_num == 0:
                raise SqlExecutionError("division by zero")
            return left_num / right_num
        if right_num == 0:
            raise SqlExecutionError("modulo by zero")
        return left_num % right_num
    raise SqlExecutionError(f"unknown binary operator {operator!r}")


# ---------------------------------------------------------------------------
# aggregation support
# ---------------------------------------------------------------------------
def contains_aggregate(expression: Expression) -> bool:
    """True when the expression tree contains an aggregate function call."""
    if isinstance(expression, FunctionCall):
        return True
    if isinstance(expression, UnaryOp):
        return contains_aggregate(expression.operand)
    if isinstance(expression, BinaryOp):
        return contains_aggregate(expression.left) or contains_aggregate(expression.right)
    if isinstance(expression, InList):
        return contains_aggregate(expression.operand) or any(
            contains_aggregate(option) for option in expression.options)
    if isinstance(expression, (IsNull,)):
        return contains_aggregate(expression.operand)
    if isinstance(expression, Between):
        return any(contains_aggregate(e) for e in (expression.operand, expression.low,
                                                   expression.high))
    if isinstance(expression, CaseExpression):
        parts = [expr for branch in expression.branches for expr in branch]
        if expression.default is not None:
            parts.append(expression.default)
        return any(contains_aggregate(part) for part in parts)
    return False


def evaluate_aggregate(expression: Expression, rows: List[Row]) -> Any:
    """Evaluate an expression in aggregate context over a group of rows."""
    if isinstance(expression, FunctionCall):
        return _apply_aggregate(expression, rows)
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        # Per-group constant column (a GROUP BY key): take it from the first row.
        if not rows:
            return None
        return resolve_column(rows[0], expression)
    if isinstance(expression, UnaryOp):
        inner = evaluate_aggregate(expression.operand, rows)
        if expression.operator == "NOT":
            return not bool(inner)
        if expression.operator == "-":
            return -_numeric(inner, "unary minus")
        return _numeric(inner, "unary plus")
    if isinstance(expression, BinaryOp):
        substitute = BinaryOp(expression.operator,
                              Literal(evaluate_aggregate(expression.left, rows)),
                              Literal(evaluate_aggregate(expression.right, rows)))
        return _evaluate_binary(substitute, {})
    if isinstance(expression, CaseExpression):
        for condition, value in expression.branches:
            if bool(evaluate_aggregate(condition, rows)):
                return evaluate_aggregate(value, rows)
        if expression.default is not None:
            return evaluate_aggregate(expression.default, rows)
        return None
    raise SqlExecutionError(
        f"expression {type(expression).__name__} is not valid in aggregate context")


def _apply_aggregate(call: FunctionCall, rows: List[Row]) -> Any:
    name = call.name
    if name == "COUNT" and call.is_star:
        return len(rows)
    if not call.arguments:
        if name == "COUNT":
            return len(rows)
        raise SqlExecutionError(f"{name} requires an argument")
    if len(call.arguments) != 1:
        raise SqlExecutionError(f"{name} takes exactly one argument")
    values = [evaluate(call.arguments[0], row) for row in rows]
    values = [v for v in values if v is not None]
    if call.distinct:
        deduped: List[Any] = []
        for value in values:
            if value not in deduped:
                deduped.append(value)
        values = deduped
    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(_numeric(v, "SUM") for v in values)
    if name == "AVG":
        numeric = [_numeric(v, "AVG") for v in values]
        return sum(numeric) / len(numeric)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise SqlExecutionError(f"unknown aggregate function {name!r}")
