"""Error hierarchy of the in-memory SQL engine."""


class SqlError(Exception):
    """Base class for every error raised by the SQL engine."""


class SqlSyntaxError(SqlError):
    """Raised when a statement cannot be tokenized or parsed."""


class SqlExecutionError(SqlError):
    """Raised when a syntactically valid statement fails during execution
    (unknown table or column, type mismatch, aggregate misuse, ...)."""
