"""Recursive-descent parser for the in-memory SQL engine."""

from __future__ import annotations

from typing import List, Optional

from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    DeleteStatement,
    Expression,
    FunctionCall,
    InList,
    InsertStatement,
    IsNull,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    TableRef,
    UnaryOp,
    UpdateStatement,
)
from repro.sqlengine.errors import SqlSyntaxError
from repro.sqlengine.lexer import Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- cursor helpers --------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def expect_keyword(self, *keywords: str) -> Token:
        token = self.peek()
        if not token.matches_keyword(*keywords):
            raise SqlSyntaxError(f"expected {' or '.join(keywords)}, got {token.value!r}")
        return self.advance()

    def accept_keyword(self, *keywords: str) -> bool:
        if self.peek().matches_keyword(*keywords):
            self.advance()
            return True
        return False

    def expect_punctuation(self, symbol: str) -> Token:
        token = self.peek()
        if token.type is not TokenType.PUNCTUATION or token.value != symbol:
            raise SqlSyntaxError(f"expected {symbol!r}, got {token.value!r}")
        return self.advance()

    def accept_punctuation(self, symbol: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCTUATION and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_identifier(self) -> str:
        token = self.peek()
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(f"expected identifier, got {token.value!r}")
        self.advance()
        return token.value

    # -- statements -------------------------------------------------------
    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.matches_keyword("SELECT"):
            statement = self.parse_select()
        elif token.matches_keyword("INSERT"):
            statement = self.parse_insert()
        elif token.matches_keyword("UPDATE"):
            statement = self.parse_update()
        elif token.matches_keyword("DELETE"):
            statement = self.parse_delete()
        else:
            raise SqlSyntaxError(f"unsupported statement start: {token.value!r}")
        self.accept_punctuation(";")
        if self.peek().type is not TokenType.END:
            raise SqlSyntaxError(f"unexpected trailing token {self.peek().value!r}")
        return statement

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_punctuation(","):
            items.append(self.parse_select_item())

        table: Optional[TableRef] = None
        joins: List[JoinClause] = []
        where = None
        group_by: List[Expression] = []
        having = None
        order_by: List[OrderItem] = []
        limit = None

        if self.accept_keyword("FROM"):
            table = self.parse_table_ref()
            while True:
                join_type = None
                if self.peek().matches_keyword("JOIN"):
                    join_type = "INNER"
                    self.advance()
                elif self.peek().matches_keyword("INNER") and self.peek(1).matches_keyword("JOIN"):
                    join_type = "INNER"
                    self.advance()
                    self.advance()
                elif self.peek().matches_keyword("LEFT"):
                    join_type = "LEFT"
                    self.advance()
                    self.expect_keyword("JOIN")
                if join_type is None:
                    break
                join_table = self.parse_table_ref()
                self.expect_keyword("ON")
                condition = self.parse_expression()
                joins.append(JoinClause(table=join_table, condition=condition,
                                        join_type=join_type))

        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.accept_punctuation(","):
                group_by.append(self.parse_expression())
        if self.accept_keyword("HAVING"):
            having = self.parse_expression()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punctuation(","):
                order_by.append(self.parse_order_item())
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError("LIMIT expects a numeric literal")
            self.advance()
            limit = int(token.value)

        return SelectStatement(items=items, table=table, joins=joins, where=where,
                               group_by=group_by, having=having, order_by=order_by,
                               limit=limit, distinct=distinct)

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.expect_identifier()
        return SelectItem(expression=expression, alias=alias)

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expression=expression, ascending=ascending)

    def parse_table_ref(self) -> TableRef:
        name = self.expect_identifier()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.expect_identifier()
        return TableRef(name=name, alias=alias)

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: List[str] = []
        if self.accept_punctuation("("):
            columns.append(self.expect_identifier())
            while self.accept_punctuation(","):
                columns.append(self.expect_identifier())
            self.expect_punctuation(")")
        self.expect_keyword("VALUES")
        rows: List[List[Expression]] = [self.parse_value_tuple()]
        while self.accept_punctuation(","):
            rows.append(self.parse_value_tuple())
        return InsertStatement(table=table, columns=columns, rows=rows)

    def parse_value_tuple(self) -> List[Expression]:
        self.expect_punctuation("(")
        values = [self.parse_expression()]
        while self.accept_punctuation(","):
            values.append(self.parse_expression())
        self.expect_punctuation(")")
        return values

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.accept_punctuation(","):
            assignments.append(self.parse_assignment())
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return UpdateStatement(table=table, assignments=assignments, where=where)

    def parse_assignment(self) -> tuple:
        column = self.expect_identifier()
        token = self.peek()
        if token.type is not TokenType.OPERATOR or token.value != "=":
            raise SqlSyntaxError(f"expected '=' in assignment, got {token.value!r}")
        self.advance()
        return (column, self.parse_expression())

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return DeleteStatement(table=table, where=where)

    # -- expressions (precedence climbing) --------------------------------
    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.peek().matches_keyword("OR"):
            self.advance()
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.peek().matches_keyword("AND"):
            self.advance()
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.peek().matches_keyword("NOT"):
            self.advance()
            return UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            operator = "<>" if token.value == "!=" else token.value
            return BinaryOp(operator, left, self.parse_additive())
        if token.matches_keyword("LIKE"):
            self.advance()
            return BinaryOp("LIKE", left, self.parse_additive())
        negated = False
        if token.matches_keyword("NOT") and self.peek(1).matches_keyword("IN", "LIKE", "BETWEEN"):
            self.advance()
            negated = True
            token = self.peek()
        if token.matches_keyword("IN"):
            self.advance()
            self.expect_punctuation("(")
            options = [self.parse_expression()]
            while self.accept_punctuation(","):
                options.append(self.parse_expression())
            self.expect_punctuation(")")
            return InList(operand=left, options=options, negated=negated)
        if token.matches_keyword("LIKE") and negated:
            self.advance()
            return UnaryOp("NOT", BinaryOp("LIKE", left, self.parse_additive()))
        if token.matches_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return Between(operand=left, low=low, high=high, negated=negated)
        if token.matches_keyword("IS"):
            self.advance()
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(operand=left, negated=is_negated)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                self.advance()
                left = BinaryOp(token.value, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.type is TokenType.STAR:
                self.advance()
                left = BinaryOp("*", left, self.parse_unary())
            elif token.type is TokenType.OPERATOR and token.value in ("/", "%"):
                self.advance()
                left = BinaryOp(token.value, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expression:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ("-", "+"):
            self.advance()
            return UnaryOp(token.value, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.matches_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.matches_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.matches_keyword("CASE"):
            return self.parse_case()
        if token.type is TokenType.STAR:
            self.advance()
            return Star()
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect_punctuation(")")
            return inner
        if token.matches_keyword(*_AGGREGATE_KEYWORDS):
            self.advance()
            return self.parse_function_call(token.value)
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            name = token.value
            if self.peek().type is TokenType.PUNCTUATION and self.peek().value == "(":
                return self.parse_function_call(name)
            if self.accept_punctuation("."):
                following = self.peek()
                if following.type is TokenType.STAR:
                    self.advance()
                    return Star(table=name)
                column = self.expect_identifier()
                return ColumnRef(name=column, table=name)
            return ColumnRef(name=name)
        raise SqlSyntaxError(f"unexpected token {token.value!r} in expression")

    def parse_function_call(self, name: str) -> FunctionCall:
        self.expect_punctuation("(")
        distinct = self.accept_keyword("DISTINCT")
        if self.peek().type is TokenType.STAR:
            self.advance()
            self.expect_punctuation(")")
            return FunctionCall(name=name.upper(), arguments=[], distinct=distinct, is_star=True)
        arguments: List[Expression] = []
        if not (self.peek().type is TokenType.PUNCTUATION and self.peek().value == ")"):
            arguments.append(self.parse_expression())
            while self.accept_punctuation(","):
                arguments.append(self.parse_expression())
        self.expect_punctuation(")")
        return FunctionCall(name=name.upper(), arguments=arguments, distinct=distinct)

    def parse_case(self) -> CaseExpression:
        self.expect_keyword("CASE")
        branches = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            value = self.parse_expression()
            branches.append((condition, value))
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expression()
        self.expect_keyword("END")
        if not branches:
            raise SqlSyntaxError("CASE expression requires at least one WHEN branch")
        return CaseExpression(branches=branches, default=default)


def parse_statement(sql: str) -> Statement:
    """Parse a single SQL statement into its AST."""
    return _Parser(tokenize(sql)).parse_statement()
