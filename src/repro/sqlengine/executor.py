"""Statement execution for the in-memory SQL engine."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sqlengine.ast_nodes import (
    ColumnRef,
    DeleteStatement,
    Expression,
    FunctionCall,
    InsertStatement,
    JoinClause,
    Literal,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    TableRef,
    UpdateStatement,
)
from repro.sqlengine.database import Database, ResultSet, Table
from repro.sqlengine.errors import SqlExecutionError
from repro.sqlengine.expressions import (
    contains_aggregate,
    evaluate,
    evaluate_aggregate,
)
from repro.sqlengine.parser import parse_statement

Row = Dict[str, Any]


def execute_sql(database: Database, sql: str) -> Optional[ResultSet]:
    """Parse and execute one SQL statement, returning a result set for SELECT."""
    statement = parse_statement(sql)
    return execute_statement(database, statement)


def execute_statement(database: Database, statement: Statement) -> Optional[ResultSet]:
    if isinstance(statement, SelectStatement):
        return _execute_select(database, statement)
    if isinstance(statement, InsertStatement):
        _execute_insert(database, statement)
        return None
    if isinstance(statement, UpdateStatement):
        _execute_update(database, statement)
        return None
    if isinstance(statement, DeleteStatement):
        _execute_delete(database, statement)
        return None
    raise SqlExecutionError(f"unsupported statement type {type(statement).__name__}")


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------
def _rows_for_table(table: Table, ref: TableRef) -> List[Row]:
    """Produce rows keyed both by bare column name and by qualified name."""
    alias = ref.effective_name
    rows = []
    for source_row in table.rows:
        row: Row = {}
        for column, value in source_row.items():
            row[column] = value
            row[f"{alias}.{column}"] = value
        rows.append(row)
    return rows


def _merge_rows(left: Row, right: Row) -> Row:
    merged = dict(left)
    merged.update(right)
    return merged


def _null_row_like(table: Table, ref: TableRef) -> Row:
    alias = ref.effective_name
    row: Row = {}
    for column in table.columns:
        row[column] = None
        row[f"{alias}.{column}"] = None
    return row


def _apply_joins(database: Database, base_rows: List[Row],
                 joins: List[JoinClause]) -> List[Row]:
    rows = base_rows
    for join in joins:
        right_table = database.table(join.table.name)
        right_rows = _rows_for_table(right_table, join.table)
        joined: List[Row] = []
        for left_row in rows:
            matched = False
            for right_row in right_rows:
                candidate = _merge_rows(left_row, right_row)
                if bool(evaluate(join.condition, candidate)):
                    joined.append(candidate)
                    matched = True
            if not matched and join.join_type == "LEFT":
                joined.append(_merge_rows(left_row, _null_row_like(right_table, join.table)))
        rows = joined
    return rows


def _item_output_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, FunctionCall):
        if expression.is_star:
            return f"{expression.name.lower()}_star"
        if expression.arguments and isinstance(expression.arguments[0], ColumnRef):
            return f"{expression.name.lower()}_{expression.arguments[0].name}"
        return expression.name.lower()
    return f"column_{index}"


def _expand_star(row: Row, table_filter: Optional[str]) -> List[Tuple[str, Any]]:
    """Return the bare-named columns of a row (optionally for one table alias)."""
    pairs = []
    for key, value in row.items():
        if "." in key:
            continue
        if table_filter is not None and f"{table_filter}.{key}" not in row:
            continue
        pairs.append((key, value))
    return pairs


def _execute_select(database: Database, statement: SelectStatement) -> ResultSet:
    if statement.table is None:
        # SELECT of pure expressions, e.g. SELECT 1 + 1
        row: Row = {}
        out_row: Row = {}
        columns: List[str] = []
        for index, item in enumerate(statement.items):
            if isinstance(item.expression, Star):
                raise SqlExecutionError("SELECT * requires a FROM clause")
            name = _item_output_name(item, index)
            out_row[name] = evaluate(item.expression, row)
            columns.append(name)
        return ResultSet(columns, [out_row])

    base_table = database.table(statement.table.name)
    rows = _rows_for_table(base_table, statement.table)
    rows = _apply_joins(database, rows, statement.joins)

    if statement.where is not None:
        rows = [row for row in rows if bool(evaluate(statement.where, row))]

    has_aggregate = any(contains_aggregate(item.expression) for item in statement.items)
    if statement.having is not None and not statement.group_by and not has_aggregate:
        raise SqlExecutionError("HAVING requires GROUP BY or aggregate functions")

    if statement.group_by or has_aggregate:
        result_rows, columns = _execute_grouped(statement, rows)
    else:
        result_rows, columns = _execute_plain(statement, rows)

    if statement.distinct:
        deduped: List[Row] = []
        seen = set()
        for row in result_rows:
            key = tuple(repr(row[c]) for c in columns)
            if key not in seen:
                seen.add(key)
                deduped.append(row)
        result_rows = deduped

    if statement.order_by:
        result_rows = _apply_order_by(statement, result_rows, columns)

    if statement.limit is not None:
        result_rows = result_rows[: statement.limit]

    result_rows = [{key: value for key, value in row.items() if key != "__source_row__"}
                   for row in result_rows]
    return ResultSet(columns, result_rows)


def _execute_plain(statement: SelectStatement, rows: List[Row]) -> Tuple[List[Row], List[str]]:
    out_rows: List[Row] = []
    columns: List[str] = []
    for row_index, row in enumerate(rows):
        out_row: Row = {}
        current_columns: List[str] = []
        for index, item in enumerate(statement.items):
            if isinstance(item.expression, Star):
                for key, value in _expand_star(row, item.expression.table):
                    out_row[key] = value
                    current_columns.append(key)
                continue
            name = _item_output_name(item, index)
            out_row[name] = evaluate(item.expression, row)
            current_columns.append(name)
        if row_index == 0:
            columns = current_columns
        # keep the source row so ORDER BY may reference columns that were not
        # projected (standard SQL behaviour); it is stripped before returning
        out_row["__source_row__"] = row
        out_rows.append(out_row)
    if not rows:
        # derive column names from the select list only
        for index, item in enumerate(statement.items):
            if isinstance(item.expression, Star):
                continue
            columns.append(_item_output_name(item, index))
    return out_rows, columns


def _group_key(row: Row, group_by: List[Expression]) -> Tuple:
    return tuple(repr(evaluate(expression, row)) for expression in group_by)


def _execute_grouped(statement: SelectStatement, rows: List[Row]) -> Tuple[List[Row], List[str]]:
    groups: Dict[Tuple, List[Row]] = {}
    if statement.group_by:
        for row in rows:
            groups.setdefault(_group_key(row, statement.group_by), []).append(row)
    else:
        groups[("__all__",)] = rows

    columns = [_item_output_name(item, index) for index, item in enumerate(statement.items)]
    for item in statement.items:
        if isinstance(item.expression, Star):
            raise SqlExecutionError("SELECT * cannot be combined with GROUP BY/aggregates")

    out_rows: List[Row] = []
    for group_rows in groups.values():
        out_row: Row = {}
        for index, item in enumerate(statement.items):
            name = _item_output_name(item, index)
            if contains_aggregate(item.expression):
                out_row[name] = evaluate_aggregate(item.expression, group_rows)
            else:
                out_row[name] = evaluate(item.expression, group_rows[0]) if group_rows else None
        if statement.having is not None:
            having_value = (evaluate_aggregate(statement.having, group_rows)
                            if contains_aggregate(statement.having)
                            else evaluate(statement.having, group_rows[0] if group_rows else {}))
            if not bool(having_value):
                continue
        out_rows.append(out_row)
    return out_rows, columns


def _order_sort_key(value: Any) -> Tuple:
    if value is None:
        return (0, "", 0.0)
    if isinstance(value, bool):
        return (1, "", float(value))
    if isinstance(value, (int, float)):
        return (1, "", float(value))
    return (2, str(value), 0.0)


def _apply_order_by(statement: SelectStatement, rows: List[Row],
                    columns: List[str]) -> List[Row]:
    ordered = list(rows)
    for order_item in reversed(statement.order_by):
        expression = order_item.expression

        def key_function(row: Row, expr: Expression = expression) -> Tuple:
            # ORDER BY may reference an output alias, a positional index, or a
            # column of the underlying (pre-projection) row.
            if isinstance(expr, ColumnRef) and expr.table is None and expr.name in row:
                return _order_sort_key(row[expr.name])
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                index = expr.value - 1
                if 0 <= index < len(columns):
                    return _order_sort_key(row[columns[index]])
            try:
                return _order_sort_key(evaluate(expr, row))
            except SqlExecutionError:
                source_row = row.get("__source_row__")
                if source_row is not None:
                    try:
                        return _order_sort_key(evaluate(expr, source_row))
                    except SqlExecutionError:
                        return _order_sort_key(None)
                return _order_sort_key(None)

        ordered.sort(key=key_function, reverse=not order_item.ascending)
    return ordered


# ---------------------------------------------------------------------------
# INSERT / UPDATE / DELETE
# ---------------------------------------------------------------------------
def _execute_insert(database: Database, statement: InsertStatement) -> None:
    table = database.table(statement.table)
    columns = statement.columns or list(table.columns)
    for values in statement.rows:
        if len(values) != len(columns):
            raise SqlExecutionError(
                f"INSERT column/value count mismatch: {len(columns)} vs {len(values)}")
        row = {column: evaluate(value, {}) for column, value in zip(columns, values)}
        table.insert(row)


def _execute_update(database: Database, statement: UpdateStatement) -> None:
    table = database.table(statement.table)
    for column, _ in statement.assignments:
        if column not in table.columns:
            raise SqlExecutionError(
                f"table {table.name!r} has no column {column!r} to update")
    for row in table.rows:
        if statement.where is None or bool(evaluate(statement.where, row)):
            for column, expression in statement.assignments:
                row[column] = evaluate(expression, row)


def _execute_delete(database: Database, statement: DeleteStatement) -> None:
    table = database.table(statement.table)
    if statement.where is None:
        table.rows.clear()
        return
    table.rows[:] = [row for row in table.rows
                     if not bool(evaluate(statement.where, row))]
