"""Scenario-generation throughput — nodes+edges per second per family.

Not a paper artifact: this bench tracks the performance trajectory of the
`repro.scenarios` topology generators.  Each family is built at a
representative size and timed; the per-family generation rate is written as
JSON to ``benchmarks/results/scenarios_throughput.json`` so successive PRs
can compare numbers.
"""

import json
import time

from helpers import RESULTS_DIR
from repro.scenarios import build_topology, family_names

#: representative parameter overrides so every family builds a non-trivial graph
FAMILY_SIZES = {
    "fat-tree": {"k": 8, "hosts_per_edge": 4},
    "wan-backbone": {"pop_count": 60, "extra_links": 40},
    "ring": {"node_count": 200},
    "star": {"leaf_count": 200},
    "mesh": {"node_count": 40, "connectivity": 0.5},
    "geometric": {"node_count": 120, "radius": 0.25},
    "random-traffic": {"node_count": 150, "edge_count": 300},
    "malt": {"racks_per_pod": 4, "ports_per_switch": 6},
}

ROUNDS = 3


def _measure(family: str, params: dict) -> dict:
    graph = build_topology(family, params, seed=7)  # warm-up + size probe
    size = graph.node_count + graph.edge_count
    start = time.perf_counter()
    for round_index in range(ROUNDS):
        build_topology(family, params, seed=7 + round_index)
    elapsed = time.perf_counter() - start
    return {
        "nodes": graph.node_count,
        "edges": graph.edge_count,
        "seconds_per_build": elapsed / ROUNDS,
        "elements_per_second": round(size * ROUNDS / elapsed, 1),
    }


def test_scenarios_throughput(benchmark):
    assert set(FAMILY_SIZES) == set(family_names())
    benchmark.pedantic(lambda: build_topology("fat-tree", FAMILY_SIZES["fat-tree"]),
                       rounds=1, iterations=1)

    results = {family: _measure(family, params)
               for family, params in sorted(FAMILY_SIZES.items())}

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "scenarios_throughput.json"
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")

    for family, stats in results.items():
        assert stats["nodes"] > 0 and stats["edges"] > 0, family
        # generation must stay comfortably interactive
        assert stats["elements_per_second"] > 1_000, (family, stats)
