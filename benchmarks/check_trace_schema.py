"""CI observability smoke: validate exported trace and metrics JSON.

``repro-nemo benchmark --trace OUT.json --metrics-out OUT.json`` promises
two machine-readable artifacts:

* a Chrome trace-event document (loadable at ``chrome://tracing`` or
  ui.perfetto.dev) whose complete ("X") events carry numeric, non-negative
  timestamps/durations and whose every process lane is named by a
  ``process_name`` metadata event;
* a metrics snapshot whose counters are non-negative integers and whose
  histograms carry a consistent count/sum/min/max and the streaming
  p50/p95/p99 quantiles.

This checker enforces both shapes so the CI smoke run catches an export
regression (a renamed field, a string timestamp, a lane without a name)
before anyone tries to load the file in a viewer.  Span coverage is
asserted with ``--expect PREFIX``: the trace must contain at least one X
event whose name starts with the prefix, which is how CI pins "synthesis,
sandbox, and fabric spans all made it into the merged trace".

The span-parsing pieces (:data:`X_EVENT_FIELDS`,
:func:`metadata_process_name`) are imported from
:mod:`repro.obs.analyze` — the same helpers ``repro obs report`` analyzes
traces with — so the checker and the analyzer cannot disagree about what a
well-formed span looks like.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_trace_schema.py \
        --trace trace.json --metrics metrics.json \
        --expect synthesis. --expect sandbox.execute --expect exec.task
"""

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.obs.analyze import X_EVENT_FIELDS, metadata_process_name

#: every histogram snapshot must carry these fields
HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean",
                    "p50", "p95", "p99", "buckets")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_trace(document: Any, expect: List[str] = ()) -> List[str]:
    """Problems with a Chrome trace-event document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"trace document is {type(document).__name__}, expected object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["trace document has no traceEvents list"]

    named_pids = set()
    span_pids = set()
    span_names = []
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "process_name":
                if metadata_process_name(event) is None:
                    problems.append(f"{where}: process_name without a name arg")
                named_pids.add(event.get("pid"))
            continue
        if phase != "X":
            problems.append(f"{where}: unexpected phase {phase!r}")
            continue
        missing = [key for key in X_EVENT_FIELDS if key not in event]
        if missing:
            problems.append(f"{where}: missing {', '.join(missing)}")
            continue
        if not isinstance(event["name"], str) or not event["name"]:
            problems.append(f"{where}: name is not a non-empty string")
        for key in ("ts", "dur"):
            if not _is_number(event[key]) or event[key] < 0:
                problems.append(f"{where}: {key}={event[key]!r} is not a "
                                f"non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int) or event[key] < 0:
                problems.append(f"{where}: {key}={event[key]!r} is not a "
                                f"non-negative integer")
        span_pids.add(event.get("pid"))
        span_names.append(event.get("name"))

    for pid in sorted(pid for pid in span_pids if pid not in named_pids):
        problems.append(f"process lane pid={pid} has no process_name metadata")
    for prefix in expect:
        if not any(isinstance(name, str) and name.startswith(prefix)
                   for name in span_names):
            problems.append(f"no span named {prefix}* in the trace "
                            f"(have: {', '.join(sorted(set(span_names))) or 'none'})")
    return problems


def _validate_histogram(name: str, histogram: Any) -> List[str]:
    problems: List[str] = []
    where = f"histograms[{name!r}]"
    if not isinstance(histogram, dict):
        return [f"{where}: not an object"]
    missing = [key for key in HISTOGRAM_FIELDS if key not in histogram]
    if missing:
        return [f"{where}: missing {', '.join(missing)}"]
    count = histogram["count"]
    if not isinstance(count, int) or count < 0:
        problems.append(f"{where}: count={count!r} is not a non-negative integer")
    for key in ("sum", "min", "max", "mean", "p50", "p95", "p99"):
        if not _is_number(histogram[key]):
            problems.append(f"{where}: {key}={histogram[key]!r} is not a number")
    if not problems and count > 0:
        if not histogram["min"] <= histogram["mean"] <= histogram["max"]:
            problems.append(f"{where}: mean outside [min, max]")
        if not histogram["p50"] <= histogram["p95"] <= histogram["p99"]:
            problems.append(f"{where}: quantiles are not monotonic")
    buckets = histogram["buckets"]
    if not isinstance(buckets, dict):
        problems.append(f"{where}: buckets is not an object")
    elif count > 0 and sum(buckets.values()) != count:
        problems.append(f"{where}: bucket counts sum to {sum(buckets.values())}"
                        f", count says {count}")
    return problems


def validate_metrics(document: Any) -> List[str]:
    """Problems with a metrics snapshot document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"metrics document is {type(document).__name__}, expected object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(document.get(section), dict):
            problems.append(f"metrics document has no {section} object")
    if problems:
        return problems
    for name, value in sorted(document["counters"].items()):
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"counters[{name!r}]={value!r} is not a "
                            f"non-negative integer")
    for name, value in sorted(document["gauges"].items()):
        if not _is_number(value):
            problems.append(f"gauges[{name!r}]={value!r} is not a number")
    for name, histogram in sorted(document["histograms"].items()):
        problems.extend(_validate_histogram(name, histogram))
    return problems


def _load(path: Path) -> Any:
    return json.loads(path.read_text(encoding="utf-8"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate exported trace/metrics JSON artifacts")
    parser.add_argument("--trace", type=Path, default=None,
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--metrics", type=Path, default=None,
                        help="metrics snapshot JSON to validate")
    parser.add_argument("--expect", action="append", default=[],
                        metavar="PREFIX",
                        help="require at least one trace span whose name "
                             "starts with PREFIX (repeatable)")
    args = parser.parse_args(argv)
    if args.trace is None and args.metrics is None:
        parser.error("nothing to check: pass --trace and/or --metrics")
    if args.expect and args.trace is None:
        parser.error("--expect requires --trace")

    problems: List[str] = []
    checked: Dict[str, int] = {}
    for label, path, validate in (
            ("trace", args.trace, lambda doc: validate_trace(doc, args.expect)),
            ("metrics", args.metrics, validate_metrics)):
        if path is None:
            continue
        try:
            document = _load(path)
        except (OSError, json.JSONDecodeError) as error:
            problems.append(f"cannot load {label} file {path}: {error}")
            continue
        found = validate(document)
        problems.extend(f"{label}: {problem}" for problem in found)
        if label == "trace":
            checked["trace events"] = len(document.get("traceEvents", []))
        else:
            checked["histograms"] = len(document.get("histograms", {}))

    for problem in problems:
        print(f"INVALID {problem}", file=sys.stderr)
    if not problems:
        summary = ", ".join(f"{count} {label}" for label, count in checked.items())
        print(f"observability artifacts are valid ({summary})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
