"""Paper Table 2 — accuracy summary for both applications, four models,
four code-generation approaches.

Regenerates the full model x backend accuracy matrix with the calibrated
simulated LLMs and checks the qualitative findings of the paper: code
generation beats the strawman, NetworkX beats pandas and SQL, and GPT-4 with
NetworkX is the best configuration.
"""

import pytest

from helpers import PAPER_TABLE2, write_result
from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.utils.tables import format_table


def _run_both_applications():
    runner = BenchmarkRunner(BenchmarkConfig())
    return {
        "traffic_analysis": runner.run_application("traffic_analysis"),
        "malt": runner.run_application("malt"),
    }


@pytest.fixture(scope="module")
def reports():
    return _run_both_applications()


def test_table2_accuracy_summary(benchmark, reports):
    # benchmark the traffic-analysis half of the table (one full pass)
    runner = BenchmarkRunner(BenchmarkConfig())
    benchmark.pedantic(lambda: runner.run_application("traffic_analysis", models=["gpt-4"]),
                       rounds=1, iterations=1)

    lines = []
    for application, report in reports.items():
        measured = report.summary()
        rows = []
        for model in report.models:
            for backend in report.backends:
                paper = PAPER_TABLE2[application].get(model, {}).get(backend)
                rows.append([model, backend, measured[model][backend],
                             "-" if paper is None else paper])
        lines.append(format_table(["model", "backend", "measured", "paper"], rows,
                                  title=f"Table 2 — {application}"))
        lines.append("")
    output = "\n".join(lines)
    write_result("table2_accuracy", output)

    traffic = reports["traffic_analysis"].summary()
    malt = reports["malt"].summary()
    # paper finding 1: code generation beats the strawman for every model
    for model in reports["traffic_analysis"].models:
        assert traffic[model]["networkx"] > traffic[model]["strawman"]
    # paper finding 2: the graph library backend beats pandas and SQL
    for model in reports["traffic_analysis"].models:
        assert traffic[model]["networkx"] >= traffic[model]["pandas"]
        assert traffic[model]["networkx"] >= traffic[model]["sql"]
        assert malt[model]["networkx"] >= malt[model]["sql"]
    # paper finding 3: GPT-4 + NetworkX is the best configuration (0.88 / 0.78)
    assert traffic["gpt-4"]["networkx"] == pytest.approx(0.875, abs=0.01)
    assert malt["gpt-4"]["networkx"] == pytest.approx(0.78, abs=0.01)
    # the strawman average for GPT-4 lands near the paper's 0.29
    assert traffic["gpt-4"]["strawman"] == pytest.approx(0.29, abs=0.05)
