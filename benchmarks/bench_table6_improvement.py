"""Paper Table 6 — improvement case study: Bard + NetworkX on MALT with
pass@5 sampling and one self-debug round."""

import pytest

from helpers import PAPER_TABLE6, write_result
from repro.benchmark import BenchmarkConfig
from repro.techniques import ImprovementCaseStudy
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def study():
    return ImprovementCaseStudy(BenchmarkConfig(), k=5, self_debug_rounds=1)


@pytest.fixture(scope="module")
def overall(study):
    return study.overall_accuracy_with_techniques("malt", "bard", "networkx")


def test_table6_improvement(benchmark, study, overall):
    benchmark.pedantic(lambda: study.run("malt", "bard", "networkx"), rounds=1, iterations=1)

    rows = [
        ["Bard + Pass@1", overall["pass@1"], PAPER_TABLE6["pass@1"]],
        ["Bard + Pass@5", overall["pass@5"], PAPER_TABLE6["pass@5"]],
        ["Bard + Self-debug", overall["self-debug"], PAPER_TABLE6["self-debug"]],
    ]
    output = format_table(["configuration", "measured", "paper"], rows,
                          title="Table 6 — improvement with complementary techniques "
                                "(Bard, NetworkX, MALT)")
    write_result("table6_improvement", output)

    # reproduces the paper's row: 0.44 -> 1.0 with pass@5, -> 0.67 with self-debug
    assert overall["pass@1"] == pytest.approx(PAPER_TABLE6["pass@1"], abs=0.02)
    assert overall["pass@5"] == pytest.approx(PAPER_TABLE6["pass@5"], abs=0.01)
    assert overall["self-debug"] == pytest.approx(PAPER_TABLE6["self-debug"], abs=0.02)
    # both techniques strictly improve over the base model
    assert overall["pass@5"] > overall["pass@1"]
    assert overall["self-debug"] > overall["pass@1"]
