"""Ablation / substrate micro-benchmarks.

These are not paper figures; they quantify the design choices DESIGN.md calls
out — conversion overhead per backend, the in-memory SQL engine, the sandbox,
and the paper-scale MALT generator — so a downstream user can see what each
representation costs.
"""

import pytest

from repro.benchmark.queries import query_by_id
from repro.core import NetworkManagementPipeline
from repro.graph.convert import to_frames, to_networkx, to_sql_database
from repro.llm import create_provider
from repro.malt import paper_scale_topology
from repro.sandbox import ExecutionSandbox
from repro.traffic import TrafficAnalysisApplication, generate_communication_graph


@pytest.fixture(scope="module")
def traffic_graph():
    return generate_communication_graph(node_count=200, edge_count=400, seed=7)


@pytest.fixture(scope="module")
def traffic_application():
    return TrafficAnalysisApplication.with_size(40, 40)


def test_generate_traffic_graph(benchmark):
    graph = benchmark(generate_communication_graph, node_count=200, edge_count=400, seed=7)
    assert graph.node_count == 200


def test_generate_paper_scale_malt(benchmark):
    graph = benchmark.pedantic(paper_scale_topology, rounds=1, iterations=1)
    assert graph.node_count == 5493


def test_convert_to_networkx(benchmark, traffic_graph):
    nx_graph = benchmark(to_networkx, traffic_graph)
    assert nx_graph.number_of_edges() == 400


def test_convert_to_frames(benchmark, traffic_graph):
    nodes_df, edges_df = benchmark(to_frames, traffic_graph)
    assert len(nodes_df) == 200 and len(edges_df) == 400


def test_convert_to_sql(benchmark, traffic_graph):
    database = benchmark(to_sql_database, traffic_graph)
    assert database.execute("SELECT COUNT(*) FROM edges").scalar() == 400


def test_sql_group_by_join(benchmark, traffic_graph):
    database = to_sql_database(traffic_graph)
    query = ("SELECT n.type AS t, SUM(bytes) AS total FROM edges "
             "JOIN nodes n ON source = n.id GROUP BY n.type ORDER BY total DESC")
    result = benchmark(database.execute, query)
    assert len(result) >= 1


def test_sandbox_execution_overhead(benchmark, traffic_graph):
    sandbox = ExecutionSandbox()
    code = "result = sum(d.get('bytes', 0) for _, _, d in G.edges(data=True))"
    namespace = {"G": to_networkx(traffic_graph)}
    outcome = benchmark(sandbox.execute, code, dict(namespace))
    assert outcome.success


def test_end_to_end_pipeline_networkx(benchmark, traffic_application):
    pipeline = NetworkManagementPipeline(traffic_application, create_provider("gpt-4"),
                                         "networkx")
    query = query_by_id("ta-m5")
    result = benchmark(pipeline.run_query, query.text)
    assert result.succeeded


def test_end_to_end_pipeline_sql(benchmark, traffic_application):
    pipeline = NetworkManagementPipeline(traffic_application, create_provider("gpt-4"), "sql")
    query = query_by_id("ta-e1")
    result = benchmark(pipeline.run_query, query.text)
    assert result.succeeded
