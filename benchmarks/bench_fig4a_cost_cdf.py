"""Paper Figure 4a — CDF of LLM cost per query at 80 nodes+edges.

Uses real token counts of the prompts this repository builds and GPT-4 Azure
pricing.  The reproduction target is the shape: the strawman approach is a
multiple of the code-generation cost at this graph size, and the
code-generation cost stays well under the paper's $0.2-per-query bound.
"""

import pytest

from helpers import PAPER_FIG4, write_result
from repro.cost import CostAnalyzer
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def cdfs():
    return CostAnalyzer(model="gpt-4").cost_cdf(node_count=40, edge_count=40,
                                                backends=("networkx", "strawman"))


def test_fig4a_cost_cdf(benchmark, cdfs):
    analyzer = CostAnalyzer(model="gpt-4")
    benchmark.pedantic(lambda: analyzer.cost_cdf(node_count=40, edge_count=40,
                                                 backends=("networkx",)),
                       rounds=1, iterations=1)

    rows = []
    for backend, cdf in cdfs.items():
        for cost, fraction in cdf.points(num_points=12):
            rows.append([backend, round(cost, 4), round(fraction, 3)])
    summary_rows = [[backend, cdf.mean, cdf.max] for backend, cdf in cdfs.items()]
    output = "\n\n".join([
        format_table(["approach", "cost ($)", "CDF"], rows,
                     title="Figure 4a — per-query cost CDF (80 nodes+edges, GPT-4 pricing)",
                     float_format="{:.4f}"),
        format_table(["approach", "mean ($)", "max ($)"], summary_rows,
                     float_format="{:.4f}"),
    ])
    write_result("fig4a_cost_cdf", output)

    codegen = cdfs["networkx"]
    strawman = cdfs["strawman"]
    # the strawman is several times more expensive than code generation
    assert strawman.mean >= PAPER_FIG4["strawman_vs_codegen_cost_ratio_at_80"] * codegen.mean
    # code generation stays under the paper's cost bound per query
    assert codegen.max < PAPER_FIG4["codegen_cost_upper_bound"]
    # every query costs something, and the CDF reaches 1.0
    assert all(cost > 0 for cost in codegen.costs)
    assert codegen.points()[-1][1] == pytest.approx(1.0)
