"""CI serving gate: fail when the served query path regresses under load.

The smoke job boots ``repro serve``, replays a short Zipf mix with
``repro loadtest --json``, and this script compares the resulting report
against the committed baseline (``benchmarks/results/loadtest_baseline.
json``) under the same noise-band rules as the span gate
(``check_span_regression.py``):

* client-side **p95 latency** may grow at most ``--limit``x over baseline,
  and only counts as a regression when the increase also clears an
  absolute floor (shared CI runners jitter sub-10ms measurements);
* **throughput** must stay above ``baseline / --limit`` — the mirror of
  the >3x topology-throughput gate;
* runs with too few completed requests produce no verdict (exit 0 with a
  notice): a gate that can fail on three samples gates on scheduler luck.

To consciously re-baseline after an intentional serving change::

    PYTHONPATH=src python -m repro.cli.main loadtest \
        --duration 6 --qps 8 --json benchmarks/results/loadtest_baseline.json

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_loadtest_regression.py \
        --report benchmarks/results/loadtest_report.json
"""

import argparse
import json
import sys
from pathlib import Path

#: client p95 may be at most this many times the committed baseline, and
#: throughput at least baseline divided by it
MAX_REGRESSION = 5.0

#: p95 must also exceed the baseline by this many seconds to regress —
#: the served path is ~10ms end to end, so sub-10ms deltas are runner noise
ABS_FLOOR_S = 0.010

#: both reports need at least this many completed requests for a verdict
MIN_COMPLETED = 5

BASELINE_PATH = Path(__file__).parent / "results" / "loadtest_baseline.json"


def _verdict_p95(baseline: float, current: float, limit: float,
                 abs_floor: float):
    """(ok, detail) for the latency side."""
    ratio = (current / baseline) if baseline > 0 else None
    detail = f"p95 {baseline * 1000:.1f}ms -> {current * 1000:.1f}ms"
    if current - baseline < abs_floor:
        return True, f"{detail} (within {abs_floor * 1000:.0f}ms floor)"
    if ratio is not None and ratio > limit:
        return False, f"{detail} ({ratio:.2f}x, limit {limit:g}x)"
    return True, detail


def _verdict_throughput(baseline: float, current: float, limit: float):
    """(ok, detail) for the throughput side."""
    floor = baseline / limit
    detail = f"throughput {baseline:.2f} -> {current:.2f} qps"
    if current < floor:
        return False, f"{detail} (below {floor:.2f} qps = baseline/{limit:g})"
    return True, detail


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="gate served p95 latency and throughput against the "
                    "committed load-test baseline")
    parser.add_argument("--report", type=Path, required=True,
                        help="load-test report JSON from the current run")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help=f"committed baseline report (default {BASELINE_PATH})")
    parser.add_argument("--limit", type=float, default=MAX_REGRESSION,
                        help=f"maximum p95 ratio / minimum throughput fraction "
                             f"(default {MAX_REGRESSION}x)")
    parser.add_argument("--abs-floor", type=float, default=ABS_FLOOR_S,
                        help=f"minimum absolute p95 increase in seconds "
                             f"(default {ABS_FLOOR_S})")
    parser.add_argument("--min-completed", type=int, default=MIN_COMPLETED,
                        help=f"minimum completed requests per side "
                             f"(default {MIN_COMPLETED})")
    args = parser.parse_args(argv)

    documents = {}
    for label, path in (("baseline", args.baseline), ("current", args.report)):
        try:
            documents[label] = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read {label} report {path}: {error}", file=sys.stderr)
            return 1

    failures = []
    for label, document in documents.items():
        if document.get("failed", 0) and label == "current":
            failures.append(
                f"current run had {document['failed']} failed requests "
                f"(statuses: {document.get('status_counts')})")
        if document.get("completed", 0) < args.min_completed:
            print(f"{label} report has only {document.get('completed', 0)} "
                  f"completed requests (< {args.min_completed}); no verdict")
            return 0

    base_p95 = documents["baseline"]["latency_s"]["p95"]
    current_p95 = documents["current"]["latency_s"]["p95"]
    ok, detail = _verdict_p95(base_p95, current_p95, args.limit, args.abs_floor)
    print(f"{'ok  ' if ok else 'FAIL'} {detail}")
    if not ok:
        failures.append(detail)

    base_tp = documents["baseline"]["throughput_qps"]
    current_tp = documents["current"]["throughput_qps"]
    ok, detail = _verdict_throughput(base_tp, current_tp, args.limit)
    print(f"{'ok  ' if ok else 'FAIL'} {detail}")
    if not ok:
        failures.append(detail)

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if not failures:
        print(f"served p95 and throughput within {args.limit:g}x of the "
              f"committed baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
