"""Paper Figure 4b — cost versus graph size.

The code-generation prompt is independent of the network size, so its cost is
flat; the strawman prompt embeds the serialized graph, so its cost grows with
graph size until it no longer fits in the model's context window (the paper
reports the cliff at roughly 150 nodes+edges).
"""

import pytest

from helpers import PAPER_FIG4, write_result
from repro.cost import CostAnalyzer
from repro.utils.tables import format_table

GRAPH_SIZES = (40, 80, 120, 160, 200, 300, 400)


@pytest.fixture(scope="module")
def sweep():
    return CostAnalyzer(model="gpt-4").scalability_sweep(graph_sizes=GRAPH_SIZES)


def test_fig4b_cost_scaling(benchmark, sweep):
    analyzer = CostAnalyzer(model="gpt-4")
    benchmark.pedantic(lambda: analyzer.scalability_sweep(graph_sizes=(40, 160)),
                       rounds=1, iterations=1)

    rows = []
    for point in sweep.points:
        strawman = ("exceeds window" if point.strawman_cost_usd is None
                    else f"{point.strawman_cost_usd:.4f}")
        rows.append([point.graph_size, f"{point.codegen_cost_usd:.4f}", strawman])
    limit = sweep.strawman_limit_size()
    output = format_table(
        ["graph size (nodes+edges)", "code-gen cost ($)", "strawman cost ($)"], rows,
        title="Figure 4b — cost vs graph size (GPT-4 pricing)")
    output += f"\n\nstrawman exceeds the context window at size {limit} " \
              f"(paper: ~{PAPER_FIG4['strawman_token_limit_size']})"
    write_result("fig4b_cost_scaling", output)

    codegen_costs = [point.codegen_cost_usd for point in sweep.points]
    strawman_costs = [point.strawman_cost_usd for point in sweep.points
                      if point.strawman_cost_usd is not None]
    # code-generation cost is flat in graph size
    assert max(codegen_costs) - min(codegen_costs) < 0.01
    # strawman cost grows monotonically while it still fits
    assert strawman_costs == sorted(strawman_costs)
    assert len(strawman_costs) >= 2
    # and eventually exceeds the context window, near the paper's ~150
    limit = sweep.strawman_limit_size()
    assert limit is not None
    assert 120 <= limit <= 240
