"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper and writes the
result (paper value next to measured value) into ``benchmarks/results/`` so
the comparison survives pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: paper values used in the side-by-side outputs -----------------------------
PAPER_TABLE2 = {
    "traffic_analysis": {
        "gpt-4": {"strawman": 0.29, "sql": 0.50, "pandas": 0.38, "networkx": 0.88},
        "gpt-3": {"strawman": 0.17, "sql": 0.13, "pandas": 0.25, "networkx": 0.63},
        "text-davinci-003": {"strawman": 0.21, "sql": 0.29, "pandas": 0.29, "networkx": 0.63},
        "bard": {"strawman": 0.25, "sql": 0.21, "pandas": 0.25, "networkx": 0.59},
    },
    "malt": {
        "gpt-4": {"sql": 0.11, "pandas": 0.56, "networkx": 0.78},
        "gpt-3": {"sql": 0.11, "pandas": 0.44, "networkx": 0.44},
        "text-davinci-003": {"sql": 0.11, "pandas": 0.22, "networkx": 0.56},
        "bard": {"sql": 0.11, "pandas": 0.33, "networkx": 0.44},
    },
}

PAPER_TABLE3 = {
    "gpt-4": {"strawman": (0.50, 0.38, 0.0), "sql": (0.75, 0.50, 0.25),
              "pandas": (0.50, 0.50, 0.13), "networkx": (1.0, 1.0, 0.63)},
    "gpt-3": {"strawman": (0.38, 0.13, 0.0), "sql": (0.25, 0.13, 0.0),
              "pandas": (0.50, 0.25, 0.0), "networkx": (1.0, 0.63, 0.25)},
    "text-davinci-003": {"strawman": (0.38, 0.25, 0.0), "sql": (0.63, 0.25, 0.0),
                         "pandas": (0.63, 0.25, 0.0), "networkx": (1.0, 0.75, 0.13)},
    "bard": {"strawman": (0.50, 0.25, 0.0), "sql": (0.38, 0.25, 0.0),
             "pandas": (0.50, 0.13, 0.13), "networkx": (0.88, 0.50, 0.38)},
}

PAPER_TABLE4 = {
    "gpt-4": {"sql": (0.33, 0.0, 0.0), "pandas": (0.67, 0.67, 0.33),
              "networkx": (1.0, 1.0, 0.33)},
    "gpt-3": {"sql": (0.33, 0.0, 0.0), "pandas": (0.67, 0.67, 0.0),
              "networkx": (0.67, 0.67, 0.0)},
    "text-davinci-003": {"sql": (0.33, 0.0, 0.0), "pandas": (0.33, 0.33, 0.0),
                         "networkx": (0.67, 0.67, 0.33)},
    "bard": {"sql": (0.33, 0.0, 0.0), "pandas": (0.67, 0.33, 0.0),
             "networkx": (0.67, 0.33, 0.33)},
}

PAPER_TABLE5 = {
    "traffic_analysis": {
        "syntax_error": 9, "imaginary_graph_attribute": 9,
        "imaginary_function_argument": 3, "argument_error": 7,
        "operation_error": 4, "wrong_calculation_logic": 2, "graphs_not_identical": 1,
    },
    "malt": {
        "syntax_error": 0, "imaginary_graph_attribute": 1,
        "imaginary_function_argument": 2, "argument_error": 8,
        "operation_error": 2, "wrong_calculation_logic": 3, "graphs_not_identical": 1,
    },
}

PAPER_TABLE6 = {"pass@1": 0.44, "pass@5": 1.0, "self-debug": 0.67}

PAPER_FIG4 = {
    "strawman_vs_codegen_cost_ratio_at_80": 3.0,
    "strawman_token_limit_size": 150,
    "codegen_cost_upper_bound": 0.2,
}


def write_result(name: str, content: str) -> Path:
    """Persist a regenerated table next to the benchmark code."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path
