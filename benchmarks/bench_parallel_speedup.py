"""Parallel-sweep speedup — serial vs 2/4-worker wall time, fixed suite.

Not a paper artifact: this bench tracks the performance trajectory of the
``repro.exec`` fabric.  The workload is fixed — the default scenario suite,
every model, the NetworkX backend — and is swept three ways (serial, 2
workers, 4 workers), writing wall times and speedups as JSON to
``benchmarks/results/parallel_speedup.json``.

Two regimes are measured:

* **latency-bound** (the headline numbers): each cell carries the
  ``simulated_api_latency_s`` provider round-trip model, restoring the
  profile of real deployments where hosted-LLM latency dominates a cell's
  wall time.  Overlapping those waits is exactly what the process pool is
  for, so multi-worker wall time must drop below serial even on a single
  core — the bench asserts it.
* **cpu-bound**: the same sweep with zero simulated latency, reported for
  trend tracking.  Wall-time gains here require real cores, so no speedup
  is asserted (``host_cpu_count`` is recorded alongside).

Determinism is asserted in both regimes: every executor must produce the
same accuracy tables.
"""

import json
import os
import time

from helpers import RESULTS_DIR
from repro.benchmark.runner import BenchmarkConfig, BenchmarkRunner
from repro.exec import ExecutorPolicy

#: per-cell simulated provider round trip (seconds) for the latency regime;
#: tiny compared to real API calls (hundreds of ms) but >> per-cell compute
SIMULATED_API_LATENCY_S = 0.01

JOB_COUNTS = (1, 2, 4)


def _sweep(jobs: int, latency_s: float):
    """Run the fixed suite once; returns (wall_seconds, rendered_tables)."""
    config = BenchmarkConfig(simulated_api_latency_s=latency_s)
    # this bench tracks the *process pool* specifically (jobs=1 resolves serial)
    runner = BenchmarkRunner(config, policy=ExecutorPolicy(mode="processes",
                                                           jobs=jobs))
    start = time.perf_counter()
    reports = runner.run_scenario_suite()
    wall = time.perf_counter() - start
    tables = "\n".join(reports[name].render_summary() for name in sorted(reports))
    cells = len(runner.last_run_report.results)
    return wall, tables, cells


def _measure_regime(latency_s: float) -> dict:
    walls = {}
    tables = {}
    cells = 0
    for jobs in JOB_COUNTS:
        walls[jobs], tables[jobs], cells = _sweep(jobs, latency_s)
    # the determinism contract: identical tables at every job count
    assert tables[1] == tables[2] == tables[4]
    return {
        "cells": cells,
        "serial_wall_s": round(walls[1], 4),
        "workers_2_wall_s": round(walls[2], 4),
        "workers_4_wall_s": round(walls[4], 4),
        "speedup_2": round(walls[1] / walls[2], 3),
        "speedup_4": round(walls[1] / walls[4], 3),
    }


def test_parallel_speedup(benchmark):
    benchmark.pedantic(lambda: _sweep(2, 0.0), rounds=1, iterations=1)

    latency_bound = _measure_regime(SIMULATED_API_LATENCY_S)
    cpu_bound = _measure_regime(0.0)

    results = {
        "suite": "default",
        "backend": "networkx",
        "host_cpu_count": os.cpu_count(),
        "simulated_api_latency_s": SIMULATED_API_LATENCY_S,
        "cells": latency_bound.pop("cells"),
        **{key: value for key, value in latency_bound.items()},
        "cpu_bound": cpu_bound,
    }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "parallel_speedup.json"
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")

    # multi-worker wall time must beat serial in the latency-bound regime
    assert results["workers_2_wall_s"] < results["serial_wall_s"], results
    assert results["workers_4_wall_s"] < results["serial_wall_s"], results
    assert results["speedup_2"] > 1.0 and results["speedup_4"] > 1.0
