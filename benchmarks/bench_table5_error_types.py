"""Paper Table 5 — error-type breakdown of failed NetworkX generations.

The classifier derives the taxonomy purely from observed execution behaviour
(failure stage, exception type/message, value-vs-graph mismatch); this bench
regenerates the per-application error histograms and compares them with the
paper's counts.
"""

import pytest

from helpers import PAPER_TABLE5, write_result
from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.benchmark.errors import ERROR_TYPE_LABELS
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def reports():
    runner = BenchmarkRunner(BenchmarkConfig())
    return {
        "traffic_analysis": runner.run_application("traffic_analysis",
                                                   backends=["networkx"]),
        "malt": runner.run_application("malt", backends=["networkx"]),
    }


def test_table5_error_types(benchmark, reports):
    runner = BenchmarkRunner(BenchmarkConfig())
    benchmark.pedantic(
        lambda: runner.run_application("traffic_analysis", models=["bard"],
                                       backends=["networkx"]),
        rounds=1, iterations=1)

    lines = []
    totals = {}
    for application, report in reports.items():
        measured = report.error_type_counts(backend="networkx")
        paper = PAPER_TABLE5[application]
        rows = []
        for key, label in ERROR_TYPE_LABELS.items():
            rows.append([label, measured.get(key, 0), paper[key]])
        failures = sum(measured.values())
        totals[application] = failures
        rows.append(["TOTAL failures", failures, sum(paper.values())])
        lines.append(format_table(["error type", "measured", "paper"], rows,
                                  title=f"Table 5 — {application} (NetworkX failures)"))
        lines.append("")
    output = "\n".join(lines)
    write_result("table5_error_types", output)

    # total failure counts across the 4 models track the paper's 35 and 17
    assert totals["traffic_analysis"] == pytest.approx(35, abs=6)
    assert totals["malt"] == pytest.approx(17, abs=4)

    # qualitative shape: traffic failures are dominated by syntax errors and
    # imaginary attributes, MALT failures by argument errors
    traffic_counts = reports["traffic_analysis"].error_type_counts(backend="networkx")
    malt_counts = reports["malt"].error_type_counts(backend="networkx")
    dominant_traffic = {"syntax_error", "imaginary_graph_attribute", "argument_error"}
    assert max(traffic_counts, key=traffic_counts.get) in dominant_traffic
    assert malt_counts.get("syntax_error", 0) <= 2
    assert malt_counts.get("argument_error", 0) >= 1
