"""CI perf smoke: fail when topology generation regresses >3x.

Re-measures every topology family at the sizes used by
``bench_scenarios_throughput.py`` and compares ``seconds_per_build`` against
the committed baseline (``benchmarks/results/scenarios_throughput.json``).
Any family more than :data:`MAX_REGRESSION` times slower than its committed
number fails the build — the committed JSON is the performance contract, and
a builder who makes generation slower must either fix it or consciously
re-commit the baseline.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_throughput_regression.py
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_scenarios_throughput import FAMILY_SIZES, _measure  # noqa: E402
from helpers import RESULTS_DIR  # noqa: E402

#: a fresh build may be at most this many times slower than the baseline
MAX_REGRESSION = 3.0

#: independent measurement attempts; the best (fastest) one is compared, so
#: scheduler noise on shared CI runners cannot fail the gate on its own
ATTEMPTS = 3

BASELINE_PATH = RESULTS_DIR / "scenarios_throughput.json"


def main() -> int:
    try:
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read committed baseline {BASELINE_PATH}: {error}",
              file=sys.stderr)
        return 1

    failures = []
    for family, params in sorted(FAMILY_SIZES.items()):
        if family not in baseline:
            failures.append(f"{family}: no committed baseline entry "
                            f"(re-run the bench and commit the JSON)")
            continue
        best = min(_measure(family, params)["seconds_per_build"]
                   for _ in range(ATTEMPTS))
        committed = baseline[family]["seconds_per_build"]
        ratio = best / committed if committed else float("inf")
        verdict = "ok" if ratio <= MAX_REGRESSION else "REGRESSION"
        print(f"{family:16s} {best:.6f}s/build "
              f"(baseline {committed:.6f}s, {ratio:.2f}x) {verdict}")
        if ratio > MAX_REGRESSION:
            failures.append(f"{family}: {ratio:.2f}x slower than the committed "
                            f"baseline (limit {MAX_REGRESSION}x)")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if not failures:
        print(f"all {len(FAMILY_SIZES)} families within {MAX_REGRESSION}x "
              f"of the committed baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
