"""CI perf gate: fail when any instrumented stage's p95 regresses.

Generalizes the single-number >3x topology-throughput gate
(``check_throughput_regression.py``) to *every* instrumented pipeline
stage: the smoke run exports its metrics snapshot, and each
``span.<name>.seconds`` histogram's p95 is compared against the committed
baseline (``benchmarks/results/obs_baseline.json``) under the
:mod:`repro.obs.analyze` noise model — relative limit *and* absolute
floor, with a minimum observation count so a once-per-run span cannot
gate on scheduler luck.

Spans present on only one side are reported as ``new``/``removed`` and
never fail the gate (new instrumentation must not need a baseline commit
in the same PR to go green).  A builder who makes a stage slower must
either fix it or consciously re-commit the baseline:

    PYTHONPATH=src python -m repro.cli.main benchmark \
        --application traffic --models gpt-4 --jobs 2 --no-cache \
        --no-ledger --metrics-out benchmarks/results/obs_baseline.json

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_span_regression.py \
        --metrics benchmarks/results/metrics.json
"""

import argparse
import json
import sys
from pathlib import Path

from repro.obs.analyze import diff_metrics

#: a span's p95 may be at most this many times the committed baseline
MAX_REGRESSION = 5.0

#: and must exceed it by at least this many seconds — sub-5ms spans are
#: scheduler noise on shared CI runners, whatever their ratio says
ABS_FLOOR_S = 0.005

#: both sides need at least this many observations for a verdict
MIN_COUNT = 5

BASELINE_PATH = Path(__file__).parent / "results" / "obs_baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="gate per-span p95 latency against the committed baseline")
    parser.add_argument("--metrics", type=Path, required=True,
                        help="metrics snapshot exported by the current run")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help=f"committed baseline snapshot (default {BASELINE_PATH})")
    parser.add_argument("--limit", type=float, default=MAX_REGRESSION,
                        help=f"maximum p95 ratio vs baseline (default {MAX_REGRESSION}x)")
    parser.add_argument("--abs-floor", type=float, default=ABS_FLOOR_S,
                        help=f"minimum absolute p95 increase in seconds "
                             f"(default {ABS_FLOOR_S})")
    parser.add_argument("--min-count", type=int, default=MIN_COUNT,
                        help=f"minimum observations per side (default {MIN_COUNT})")
    args = parser.parse_args(argv)

    documents = {}
    for label, path in (("baseline", args.baseline), ("current", args.metrics)):
        try:
            documents[label] = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read {label} snapshot {path}: {error}", file=sys.stderr)
            return 1

    diff = diff_metrics(documents["baseline"], documents["current"],
                        band=args.limit - 1.0, abs_floor=args.abs_floor,
                        min_count=args.min_count, quantiles=("p95",))
    span_entries = [entry for entry in diff.entries
                    if entry.kind == "histogram"
                    and entry.name.startswith("span.")
                    and entry.name.endswith(".seconds")]
    if not span_entries:
        print("no span histograms to compare — did the run export metrics?",
              file=sys.stderr)
        return 1

    failures = []
    for entry in span_entries:
        if entry.status == "regression":
            verdict = "REGRESSION"
            failures.append(f"{entry.name}: {entry.detail} "
                            f"({entry.ratio:.2f}x, limit {args.limit}x)")
        elif entry.status in ("new", "removed"):
            verdict = entry.status.upper()
        else:
            verdict = "ok"
        ratio = f"{entry.ratio:.2f}x" if entry.ratio is not None else "-"
        print(f"{entry.name:40s} {entry.detail or 'n/a':36s} {ratio:>8s} {verdict}")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if not failures:
        compared = sum(1 for e in span_entries if e.status in ("ok", "improved"))
        print(f"all {compared} comparable span p95s within {args.limit}x "
              f"of the committed baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
