"""Paper Table 4 — MALT (network lifecycle management) accuracy broken down by
task complexity, on the paper-scale 5,493-node topology."""

import pytest

from helpers import PAPER_TABLE4, write_result
from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.utils.tables import format_table

COMPLEXITIES = ("easy", "medium", "hard")


@pytest.fixture(scope="module")
def report():
    return BenchmarkRunner(BenchmarkConfig()).run_application("malt")


def test_table4_malt_breakdown(benchmark, report):
    runner = BenchmarkRunner(BenchmarkConfig())
    benchmark.pedantic(
        lambda: runner.run_application("malt", models=["gpt-4"], backends=["networkx"]),
        rounds=1, iterations=1)

    breakdown = report.breakdown()
    rows = []
    for model in report.models:
        for backend in report.backends:
            measured = breakdown[model][backend]
            paper = PAPER_TABLE4[model][backend]
            rows.append([model, backend] + [measured[c] for c in COMPLEXITIES]
                        + list(paper))
    output = format_table(
        ["model", "backend", "E (meas)", "M (meas)", "H (meas)",
         "E (paper)", "M (paper)", "H (paper)"], rows,
        title="Table 4 — MALT by complexity (paper-scale topology)")
    write_result("table4_malt_breakdown", output)

    # paper observation: performance disparities are more pronounced on MALT,
    # and hard tasks are where every configuration struggles
    for model in report.models:
        for backend in report.backends:
            measured = breakdown[model][backend]
            assert measured["easy"] >= measured["hard"]
            assert measured["hard"] <= 0.34

    # GPT-4 + NetworkX reproduces the paper's row exactly
    gpt4 = breakdown["gpt-4"]["networkx"]
    assert gpt4["easy"] == pytest.approx(1.0)
    assert gpt4["medium"] == pytest.approx(1.0)
    assert gpt4["hard"] == pytest.approx(1 / 3, abs=0.01)
    # SQL stays flat at one easy query for every model, as in the paper
    for model in report.models:
        assert breakdown[model]["sql"]["easy"] == pytest.approx(1 / 3, abs=0.01)
        assert breakdown[model]["sql"]["medium"] == 0.0
