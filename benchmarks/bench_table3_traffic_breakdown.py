"""Paper Table 3 — traffic-analysis accuracy broken down by task complexity."""

import pytest

from helpers import PAPER_TABLE3, write_result
from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.utils.tables import format_table

COMPLEXITIES = ("easy", "medium", "hard")


@pytest.fixture(scope="module")
def report():
    return BenchmarkRunner(BenchmarkConfig()).run_application("traffic_analysis")


def test_table3_traffic_breakdown(benchmark, report):
    runner = BenchmarkRunner(BenchmarkConfig())
    benchmark.pedantic(
        lambda: runner.run_application("traffic_analysis", models=["gpt-4"],
                                       backends=["networkx"]),
        rounds=1, iterations=1)

    breakdown = report.breakdown()
    rows = []
    for model in report.models:
        for backend in report.backends:
            measured = breakdown[model][backend]
            paper = PAPER_TABLE3[model][backend]
            rows.append([model, backend] + [measured[c] for c in COMPLEXITIES]
                        + list(paper))
    output = format_table(
        ["model", "backend", "E (meas)", "M (meas)", "H (meas)",
         "E (paper)", "M (paper)", "H (paper)"], rows,
        title="Table 3 — traffic analysis by complexity")
    write_result("table3_traffic_breakdown", output)

    # accuracy decreases with task complexity for every model and backend
    for model in report.models:
        for backend in report.backends:
            measured = breakdown[model][backend]
            assert measured["easy"] >= measured["medium"] >= measured["hard"]

    # the NetworkX column reproduces the paper's cells exactly (to 1/8 rounding)
    for model in report.models:
        measured = breakdown[model]["networkx"]
        paper = PAPER_TABLE3[model]["networkx"]
        for complexity, paper_value in zip(COMPLEXITIES, paper):
            assert measured[complexity] == pytest.approx(paper_value, abs=0.07)
