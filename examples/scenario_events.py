"""Scenarios: topology families, dynamic events, and NL queries on top.

Replays a built-in WAN fiber-cut scenario (watch the snapshot digests
change), then builds the traffic-analysis application from a flash-crowd
scenario and asks a natural-language question about the post-surge network —
the full pipeline over a dynamically-evolved state.

Run with:  python examples/scenario_events.py
"""

from repro.core import NetworkManagementPipeline
from repro.llm import create_provider
from repro.scenarios import get_scenario, replay_scenario
from repro.traffic import TrafficAnalysisApplication


def main() -> None:
    spec = get_scenario("wan-fiber-cut")
    print(f"Scenario: {spec.name} — {spec.description}")
    timeline = replay_scenario(spec)
    print(timeline.summary())
    print()

    application = TrafficAnalysisApplication.from_scenario("traffic-flashcrowd")
    pipeline = NetworkManagementPipeline(application, create_provider("gpt-4"),
                                         backend="networkx")
    query = "Find the top 3 nodes by total outgoing bytes and return their addresses."
    print("=" * 72)
    print(f"Operator query (post flash crowd): {query}")
    result = pipeline.run_query(query)
    print(result.code)
    print(f"-> {result.result_value}")


if __name__ == "__main__":
    main()
