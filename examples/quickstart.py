"""Quickstart: ask natural-language questions about a synthetic network.

Builds a small communication graph, runs a few queries through the full
pipeline (prompt -> simulated LLM -> generated code -> sandbox -> result), and
prints the generated code next to the result — the experience Figure 1 of the
paper illustrates.

Run with:  python examples/quickstart.py
"""

from repro.benchmark.queries import traffic_queries
from repro.core import NetworkManagementPipeline
from repro.llm import create_provider
from repro.traffic import TrafficAnalysisApplication


def main() -> None:
    application = TrafficAnalysisApplication.with_size(node_count=40, edge_count=40)
    provider = create_provider("gpt-4")
    pipeline = NetworkManagementPipeline(application, provider, backend="networkx")

    queries = [
        "How many nodes are in the communication graph?",
        "Find the top 3 nodes by total outgoing bytes and return their addresses.",
        "Assign a unique color for each /16 IP address prefix. Use color values "
        "'color-0', 'color-1', ... assigned in sorted order of the prefixes.",
    ]
    for query in queries:
        print("=" * 72)
        print(f"Operator query: {query}")
        result = pipeline.run_query(query)
        print("\nGenerated code:\n")
        print(result.code)
        if result.succeeded:
            if result.result_value is not None:
                print(f"Result: {result.result_value}")
            else:
                colored = sum(1 for _, attrs in result.updated_graph.nodes(data=True)
                              if "color" in attrs)
                print(f"Graph updated: {colored} nodes now carry a 'color' attribute.")
        else:
            print(f"Failed at {result.error_stage}: {result.error_message}")
        print(f"LLM cost: ${result.cost_usd:.4f}")

    print("=" * 72)
    print("The full NeMoEval corpus contains these queries (Table 1 of the paper):")
    for query in traffic_queries()[:6]:
        print(f"  [{query.complexity:>6}] {query.text}")
    print("  ... (see `repro-nemo queries` for the complete list)")


if __name__ == "__main__":
    main()
