"""Compare the three code-generation backends (and the strawman) on the same
traffic-analysis query, the way Section 4.3 of the paper does.

Run with:  python examples/traffic_analysis_backends.py
"""

from repro.core import NetworkManagementPipeline
from repro.llm import create_provider
from repro.traffic import TrafficAnalysisApplication

QUERY = "Find the top 3 nodes by total outgoing bytes and return their addresses."


def main() -> None:
    application = TrafficAnalysisApplication.with_size(node_count=40, edge_count=40)
    provider = create_provider("gpt-4")

    for backend in ("networkx", "pandas", "sql", "strawman"):
        pipeline = NetworkManagementPipeline(application, provider, backend)
        result = pipeline.run_query(QUERY)
        print("=" * 72)
        print(f"Backend: {backend}")
        if result.code:
            print("Generated code:")
            print(result.code.strip())
        if result.succeeded:
            value = result.result_value
            if hasattr(value, "to_records"):
                value = value.to_records()
            print(f"Result: {value}")
        else:
            print(f"Failed at {result.error_stage}: {result.error_message}")
        print(f"Prompt tokens: {result.response.prompt_tokens if result.response else 0}"
              f"   cost: ${result.cost_usd:.4f}")

    print("=" * 72)
    print("Note how the strawman prompt is an order of magnitude larger because it "
          "embeds the whole network, while the code-generation prompts only describe "
          "the schema — that is the paper's scalability and privacy argument.")


if __name__ == "__main__":
    main()
