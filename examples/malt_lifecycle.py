"""Network lifecycle management on a MALT topology.

Runs analysis and manipulation queries against the paper-scale MALT topology
(5,493 entities), shows the generated NetworkX code, and demonstrates the
operator-approval / state-sync loop of the paper's Figure 2: the application's
network state only changes after the operator approves the result.

Run with:  python examples/malt_lifecycle.py
"""

from repro.core import NetworkManagementPipeline
from repro.llm import create_provider
from repro.malt import MaltApplication


def main() -> None:
    application = MaltApplication()     # paper-scale topology: 5,493 nodes / 6,424 edges
    provider = create_provider("gpt-4")
    pipeline = NetworkManagementPipeline(application, provider, backend="networkx")

    print(f"Topology: {application.graph.node_count} entities, "
          f"{application.graph.edge_count} relationships")

    analysis_queries = [
        "List all ports that are contained by packet switch ju1.a1.m1.s2c1.",
        "Find the first and the second largest chassis by capacity.",
        "Compute the total packet switch capacity in each datacenter.",
    ]
    for query in analysis_queries:
        result = pipeline.run_query(query)
        print("=" * 72)
        print(f"Query: {query}")
        print(f"Result: {result.result_value}")

    # a manipulation query: remove a switch and rebalance its capacity
    manipulation = ("Remove packet switch ju1.a1.m1.s1c1 from its chassis and redistribute "
                    "its capacity equally across the remaining switches in that chassis.")
    print("=" * 72)
    print(f"Query: {manipulation}")
    result = pipeline.run_query(manipulation)
    print("Generated code:")
    print(result.code)
    before = application.graph.node_count
    # the operator inspects the code and the updated graph, then approves it
    application.sync_state(result.updated_graph, query=manipulation, approved_by="operator")
    print(f"State synced: {before} -> {application.graph.node_count} entities "
          f"(switch removed), change recorded in the application history:")
    print(application.history[-1])


if __name__ == "__main__":
    main()
