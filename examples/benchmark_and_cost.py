"""Reproduce the paper's evaluation in one script.

Runs the NeMoEval accuracy benchmark (Tables 2-5), the improvement case study
(Table 6), and the cost/scalability analysis (Figure 4), printing each result
next to the value reported in the paper.  This is the script-level equivalent
of `pytest benchmarks/ --benchmark-only`.

Run with:  python examples/benchmark_and_cost.py [--small]
           (--small uses a reduced MALT topology to finish in a few seconds)
"""

import sys

from repro.benchmark import BenchmarkConfig, BenchmarkRunner
from repro.benchmark.errors import ERROR_TYPE_LABELS
from repro.cost import CostAnalyzer
from repro.malt import MaltTopologyConfig
from repro.techniques import ImprovementCaseStudy
from repro.utils.tables import format_table


def build_config(small: bool) -> BenchmarkConfig:
    if not small:
        return BenchmarkConfig()
    return BenchmarkConfig(malt_config=MaltTopologyConfig(
        datacenters=1, pods_per_datacenter=2, racks_per_pod=2, chassis_per_rack=2,
        switches_per_chassis=4, ports_per_switch=3, control_points=4, port_links=6))


def main() -> None:
    small = "--small" in sys.argv
    config = build_config(small)
    runner = BenchmarkRunner(config)

    print("Running NeMoEval: 24 traffic queries + 9 MALT queries, 4 models ...")
    for application in ("traffic_analysis", "malt"):
        report = runner.run_application(application)
        print()
        print(report.render_summary())
        print()
        print(report.render_breakdown())
        errors = report.error_type_counts(backend="networkx")
        rows = [[ERROR_TYPE_LABELS.get(key, key), count] for key, count in sorted(errors.items())]
        print()
        print(format_table(["error type (NetworkX failures)", "count"], rows,
                           title=f"Table 5 — {application}"))

    print()
    print("Improvement case study (paper Table 6: Bard, NetworkX, MALT) ...")
    study = ImprovementCaseStudy(config, k=5)
    overall = study.overall_accuracy_with_techniques("malt", "bard", "networkx")
    rows = [["Bard + Pass@1", overall["pass@1"], 0.44],
            ["Bard + Pass@5", overall["pass@5"], 1.0],
            ["Bard + Self-debug", overall["self-debug"], 0.67]]
    print(format_table(["configuration", "measured", "paper"], rows))

    print()
    print("Cost and scalability (paper Figure 4, GPT-4 pricing) ...")
    analyzer = CostAnalyzer(model="gpt-4")
    cdfs = analyzer.cost_cdf()
    rows = [[backend, cdf.mean, cdf.max] for backend, cdf in cdfs.items()]
    print(format_table(["approach", "mean cost ($)", "max cost ($)"], rows,
                       float_format="{:.4f}"))
    sweep = analyzer.scalability_sweep()
    rows = [[point.graph_size, point.codegen_cost_usd,
             point.strawman_cost_usd if point.strawman_cost_usd is not None
             else "exceeds window"]
            for point in sweep.points]
    print(format_table(["graph size", "code-gen ($)", "strawman ($)"], rows,
                       float_format="{:.4f}"))
    print(f"Strawman exceeds the context window at graph size "
          f"{sweep.strawman_limit_size()} (paper: ~150).")


if __name__ == "__main__":
    main()
